#include "sim/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "sim/user_model.h"
#include "trace/batch.h"

namespace wildenergy::sim {

using appmodel::AppProfile;
using appmodel::FlushSpec;
using appmodel::LeakSpec;
using appmodel::MediaSpec;
using appmodel::PeriodicSpec;
using appmodel::PeriodPhase;
using radio::Direction;
using trace::AppId;
using trace::PacketRecord;
using trace::ProcessState;
using trace::StateTransition;
using trace::UserId;

namespace {

/// A foreground or listening session of one app.
struct Session {
  TimePoint begin;
  TimePoint end;
  AppId app = 0;
  bool media = false;       ///< listening session (perceptible phase follows)
  TimePoint fg_end;         ///< for media: when foreground hand-off happens
  bool visible = false;     ///< secondary-UI session (Fig. 3 "visible" state)
};

/// Builds one user's event stream. All state is local; determinism comes
/// from keyed Rng streams.
class UserSim {
 public:
  UserSim(const StudyConfig& config, const appmodel::AppCatalog& catalog, UserId user)
      : config_(config), catalog_(catalog), user_(user),
        plan_(make_user_plan(config, catalog, user)),
        diurnal_(make_user_diurnal(config, user)) {
    if (config.wifi_availability > 0.0) {
      Rng rng = stream("wifi-window");
      wifi_hours_ = std::clamp(config.wifi_availability, 0.0, 1.0) * 24.0;
      wifi_start_ = rng.uniform(18.0, 22.0);  // evening arrival at home
    }
  }

  void generate(trace::TraceSink& sink, std::size_t batch_size) {
    build_sessions();
    build_media_sessions();
    index_foreground_intervals();
    emit_session_traffic();
    emit_periodic_traffic();
    emit_stream(sink, batch_size);
  }

 private:
  // -- helpers -------------------------------------------------------------

  Rng stream(std::string_view purpose, AppId app = trace::kNoApp) const {
    return Rng::keyed({config_.seed, hash_name(purpose), user_, app});
  }

  [[nodiscard]] TimePoint study_end() const { return config_.study_end(); }

  void packet(TimePoint t, AppId app, std::uint64_t bytes, Direction dir, ProcessState state,
              trace::FlowId flow) {
    if (bytes == 0 || t >= study_end() || t < config_.study_begin()) return;
    PacketRecord p;
    p.time = t;
    p.user = user_;
    p.app = app;
    p.flow = flow;
    p.bytes = bytes;
    p.direction = dir;
    p.interface = interface_at(t);
    p.state = state;
    packets_.push_back(p);
  }

  /// Interface in use at t: WiFi during the user's nightly home window when
  /// WiFi modeling is enabled, cellular otherwise.
  [[nodiscard]] trace::Interface interface_at(TimePoint t) const {
    if (wifi_hours_ <= 0.0) return trace::Interface::kCellular;
    const double hour = t.seconds_into_day() / 3600.0;
    // Window [wifi_start_, wifi_start_ + wifi_hours_), wrapping midnight.
    const double rel = std::fmod(hour - wifi_start_ + 24.0, 24.0);
    return rel < wifi_hours_ ? trace::Interface::kWifi : trace::Interface::kCellular;
  }

  void transition(TimePoint t, AppId app, ProcessState from, ProcessState to) {
    if (t >= study_end() || t < config_.study_begin()) return;
    transitions_.push_back({t, user_, app, from, to});
  }

  /// Process state an app's *scheduled-background* packet should carry at t:
  /// if the app happens to be foregrounded, the traffic is foreground.
  ProcessState state_at(AppId app, TimePoint t, ProcessState scheduled) const {
    const auto it = fg_intervals_.find(app);
    if (it == fg_intervals_.end()) return scheduled;
    const auto& ivs = it->second;
    auto pos = std::upper_bound(ivs.begin(), ivs.end(), t,
                                [](TimePoint v, const auto& iv) { return v < iv.first; });
    if (pos != ivs.begin()) {
      --pos;
      if (t >= pos->first && t < pos->second) return ProcessState::kForeground;
    }
    return scheduled;
  }

  /// Start of the app's next foreground session strictly after t (or study end).
  TimePoint next_session_after(AppId app, TimePoint t) const {
    const auto it = fg_intervals_.find(app);
    if (it == fg_intervals_.end()) return study_end();
    const auto& ivs = it->second;
    const auto pos = std::upper_bound(ivs.begin(), ivs.end(), t,
                                      [](TimePoint v, const auto& iv) { return v < iv.first; });
    return pos == ivs.end() ? study_end() : pos->first;
  }

  // -- phase 1: user-driven foreground sessions -----------------------------

  void build_sessions() {
    Rng rng = stream("pickups");
    // Selection weights over installed apps with foreground behaviour.
    std::vector<std::pair<std::size_t, double>> weights;  // (index into installed, weight)
    double total_weight = 0.0;
    for (std::size_t i = 0; i < plan_.installed.size(); ++i) {
      const auto& ia = plan_.installed[i];
      const AppProfile& profile = catalog_[ia.app];
      const double w = profile.popularity * ia.affinity * profile.foreground.sessions_per_day;
      if (w > 0.0) {
        weights.emplace_back(i, w);
        total_weight += w;
      }
    }
    if (weights.empty()) return;

    TimePoint cursor{};  // serializes sessions: one foreground app at a time
    for (std::int64_t day = 0; day < config_.num_days; ++day) {
      const double mean = config_.pickups_per_day * plan_.engagement *
                          weekday_factor(day, config_.weekday_amplitude);
      const std::uint64_t pickups = rng.poisson(mean);
      std::vector<double> times;
      times.reserve(pickups);
      for (std::uint64_t i = 0; i < pickups; ++i) {
        times.push_back(sample_diurnal_seconds(rng, diurnal_));
      }
      std::sort(times.begin(), times.end());

      for (double tod : times) {
        TimePoint t = config_.study_begin() + days(static_cast<double>(day)) + sec(tod);
        t = std::max(t, cursor);
        // 1-4 apps per pickup, geometric-ish.
        int chain = 1;
        while (chain < 4 && rng.chance(0.3)) ++chain;
        for (int c = 0; c < chain; ++c) {
          // Weighted app pick.
          double target = rng.uniform() * total_weight;
          std::size_t pick = weights.back().first;
          for (const auto& [idx, w] : weights) {
            if ((target -= w) <= 0.0) {
              pick = idx;
              break;
            }
          }
          const auto& ia = plan_.installed[pick];
          const AppProfile& profile = catalog_[ia.app];
          const double minutes_len =
              rng.lognormal(std::log(profile.foreground.session_minutes_mean),
                            profile.foreground.session_minutes_sigma);
          Session s;
          s.begin = t;
          s.end = t + minutes(std::clamp(minutes_len, 0.15, 90.0));
          s.app = ia.app;
          s.visible = rng.chance(0.08);
          if (s.end >= study_end()) s.end = study_end() - usec(1);
          if (s.end <= s.begin) continue;
          sessions_.push_back(s);
          t = s.end + sec(2.0);
        }
        cursor = t + sec(30.0);
      }
    }
  }

  // -- phase 2: media listening sessions ------------------------------------

  void build_media_sessions() {
    for (const auto& ia : plan_.installed) {
      const AppProfile& profile = catalog_[ia.app];
      if (!profile.media) continue;
      const MediaSpec& media = *profile.media;
      Rng rng = stream("media", ia.app);
      const double rate =
          media.listen_sessions_per_day * std::min(ia.affinity, 2.5) * plan_.engagement;
      for (std::int64_t day = 0; day < config_.num_days; ++day) {
        const std::uint64_t n = rng.poisson(rate);
        for (std::uint64_t i = 0; i < n; ++i) {
          Session s;
          s.begin = config_.study_begin() + days(static_cast<double>(day)) +
                    sec(sample_diurnal_seconds(rng, diurnal_));
          const double len = rng.lognormal(std::log(media.session_minutes_mean),
                                           media.session_minutes_sigma);
          s.end = s.begin + minutes(std::clamp(len, 2.0, 240.0));
          s.app = ia.app;
          s.media = true;
          s.fg_end = s.begin + sec(std::min(60.0, (s.end - s.begin).seconds() * 0.1));
          if (s.end >= study_end()) s.end = study_end() - usec(1);
          if (s.end <= s.begin) continue;
          sessions_.push_back(s);
        }
      }
    }
  }

  void index_foreground_intervals() {
    std::sort(sessions_.begin(), sessions_.end(),
              [](const Session& a, const Session& b) { return a.begin < b.begin; });
    for (const auto& s : sessions_) {
      if (s.media && catalog_[s.app].media->delegated_service) continue;
      const TimePoint fg_hi = s.media ? s.fg_end : s.end;
      fg_intervals_[s.app].emplace_back(s.begin, fg_hi);
    }
    for (auto& [app, ivs] : fg_intervals_) {
      std::sort(ivs.begin(), ivs.end());
    }
  }

  // -- phase 3: per-session traffic (fg bursts, flush, leaks, media chunks) --

  void emit_session_traffic() {
    std::unordered_map<AppId, Rng> rngs;
    for (const auto& s : sessions_) {
      auto [it, inserted] = rngs.try_emplace(s.app, stream("session-traffic", s.app));
      Rng& rng = it->second;
      const AppProfile& profile = catalog_[s.app];

      if (s.media) {
        emit_media_session(s, *profile.media, rng);
        continue;
      }

      const ProcessState fg_state = s.visible ? ProcessState::kVisible : ProcessState::kForeground;
      transition(s.begin, s.app, ProcessState::kBackground, fg_state);
      const trace::FlowId flow = next_flow_++;
      const auto& fg = profile.foreground;
      TimePoint t = s.begin + sec(0.5);
      while (t < s.end) {
        const bool up = rng.chance(0.15);
        const double mean_bytes =
            static_cast<double>(up ? fg.burst_bytes_up : fg.burst_bytes_down);
        const auto bytes =
            static_cast<std::uint64_t>(rng.lognormal(std::log(mean_bytes), 0.8));
        packet(t, s.app, bytes, up ? Direction::kUplink : Direction::kDownlink, fg_state, flow);
        t += sec(rng.exponential(fg.burst_interval.seconds()));
      }
      transition(s.end, s.app, fg_state, ProcessState::kBackground);

      if (profile.flush) emit_flush(s, *profile.flush, rng);
      // A leak is the *same* logical flow continuing after minimize (§4.1),
      // so it keeps the session's flow id.
      if (profile.leak) emit_leak(s, *profile.leak, flow, rng);
    }
  }

  void emit_flush(const Session& s, const FlushSpec& flush, Rng& rng) {
    if (!rng.chance(flush.flush_probability)) return;
    const trace::FlowId flow = next_flow_++;
    TimePoint t = s.end;
    for (int b = 0; b < flush.bursts; ++b) {
      t += sec(rng.exponential(flush.mean_spacing.seconds()));
      const auto down = static_cast<std::uint64_t>(
          rng.lognormal(std::log(static_cast<double>(flush.bytes_down)), 0.6));
      const auto up = static_cast<std::uint64_t>(
          rng.lognormal(std::log(static_cast<double>(flush.bytes_up)), 0.6));
      packet(t, s.app, up, Direction::kUplink,
             state_at(s.app, t, ProcessState::kBackground), flow);
      packet(t + msec(300), s.app, down, Direction::kDownlink,
             state_at(s.app, t + msec(300), ProcessState::kBackground), flow);
    }
  }

  void emit_leak(const Session& s, const LeakSpec& leak, trace::FlowId flow, Rng& rng) {
    if (!rng.chance(leak.leak_probability)) return;
    const std::int64_t day = s.end.day_index();

    const bool egregious = rng.chance(leak.egregious_probability);
    double poll_s;
    Duration lifetime;
    if (egregious) {
      // The 2-second transit page: polls "indefinitely, keeping the cellular
      // radio alive ... until the app is killed or the tab is closed".
      poll_s = leak.egregious_poll_period.seconds();
      lifetime = hours(rng.pareto(1.0, 1.0));  // hours, heavy-tailed
    } else {
      poll_s = leak.poll_period.at(day).seconds();
      if (rng.chance(leak.pareto_tail_probability)) {
        lifetime = hours(rng.pareto(2.0, leak.pareto_tail_alpha));
      } else {
        lifetime = minutes(rng.lognormal(leak.duration_minutes_mu, leak.duration_minutes_sigma));
      }
    }
    TimePoint stop = s.end + lifetime;
    stop = std::min({stop, next_session_after(s.app, s.end), study_end()});

    TimePoint t = s.end + sec(rng.exponential(poll_s));
    while (t < stop) {
      packet(t, s.app, leak.poll_bytes_up, Direction::kUplink, ProcessState::kBackground, flow);
      packet(t + msec(200), s.app, leak.poll_bytes_down, Direction::kDownlink,
             ProcessState::kBackground, flow);
      t += sec(rng.lognormal(std::log(poll_s), egregious ? 0.05 : leak.poll_period_sigma));
    }
  }

  void emit_media_session(const Session& s, const MediaSpec& media, Rng& rng) {
    const std::int64_t day = s.begin.day_index();
    const trace::FlowId flow = next_flow_++;
    if (!media.delegated_service) {
      transition(s.begin, s.app, ProcessState::kBackground, ProcessState::kForeground);
      transition(s.fg_end, s.app, ProcessState::kForeground, ProcessState::kPerceptible);
      transition(s.end, s.app, ProcessState::kPerceptible, ProcessState::kBackground);
      // Browsing/track-picking burst at the start.
      packet(s.begin + sec(1.0), s.app, 150'000, Direction::kDownlink,
             ProcessState::kForeground, flow);
    }

    if (media.whole_file) {
      const auto bytes = static_cast<std::uint64_t>(
          rng.lognormal(std::log(static_cast<double>(media.whole_file_bytes)), 0.35));
      packet(s.fg_end + sec(1.0), s.app, bytes, Direction::kDownlink,
             ProcessState::kPerceptible, flow);
      return;
    }
    const double period_s = media.chunk_period.at(day).seconds();
    const auto chunk = media.chunk_bytes.at(day);
    TimePoint t = s.fg_end + sec(1.0);
    while (t < s.end) {
      const auto bytes = static_cast<std::uint64_t>(
          rng.lognormal(std::log(static_cast<double>(chunk)), 0.25));
      packet(t, s.app, bytes, Direction::kDownlink, ProcessState::kPerceptible, next_flow_++);
      t += sec(rng.lognormal(std::log(period_s), 0.15));
    }
  }

  // -- phase 4: background-initiated (periodic) traffic ----------------------

  void emit_periodic_traffic() {
    for (const auto& ia : plan_.installed) {
      const AppProfile& profile = catalog_[ia.app];
      for (std::size_t spec_idx = 0; spec_idx < profile.periodic.size(); ++spec_idx) {
        const PeriodicSpec& spec = profile.periodic[spec_idx];
        Rng rng = Rng::keyed({config_.seed, hash_name("periodic"), user_, ia.app,
                              static_cast<std::uint64_t>(spec_idx)});
        if (spec.phase == PeriodPhase::kResetOnBackground) {
          emit_reset_phase_periodic(ia.app, spec, rng);
        } else {
          emit_free_running_periodic(ia.app, spec, rng);
        }
      }
    }
  }

  void emit_update(TimePoint t, AppId app, const PeriodicSpec& spec, Rng& rng) {
    const std::int64_t day = t.day_index();
    const trace::FlowId flow = next_flow_++;
    // Mild payload variation around the scheduled sizes.
    const auto vary = [&rng](std::uint64_t mean) {
      return mean == 0 ? std::uint64_t{0}
                       : static_cast<std::uint64_t>(
                             rng.lognormal(std::log(static_cast<double>(mean)), 0.25));
    };
    const auto up = vary(spec.bytes_up.at(day));
    const auto down_total = vary(spec.bytes_down.at(day));
    const int bursts = std::max(1, spec.bursts_per_update);
    packet(t, app, up, Direction::kUplink, state_at(app, t, spec.state), flow);
    TimePoint bt = t + msec(400);
    for (int b = 0; b < bursts; ++b) {
      const auto bytes = std::max<std::uint64_t>(1, down_total / static_cast<std::uint64_t>(bursts));
      packet(bt, app, bytes, Direction::kDownlink, state_at(app, bt, spec.state), flow);
      bt += spec.intra_update_gap;
    }
  }

  void emit_free_running_periodic(AppId app, const PeriodicSpec& spec, Rng& rng) {
    TimePoint t = config_.study_begin() + sec(rng.uniform(0.0, spec.period.at(0).seconds()));
    TimePoint next_close = spec.forced_close_mean_days > 0.0
                               ? t + days(rng.exponential(spec.forced_close_mean_days))
                               : study_end() + sec(1.0);
    while (t < study_end()) {
      if (t >= next_close) {
        // Forced close: traffic pauses until a restart (alarm/boot) or the
        // user foregrounds the app again — non-sticky processes only come
        // back with the user.
        const TimePoint reopened = next_session_after(app, next_close);
        if (spec.restart_on_foreground_only) {
          t = reopened + sec(5.0);
        } else {
          const TimePoint restart = next_close + hours(rng.exponential(spec.restart_mean_hours));
          t = std::min(restart, reopened);
        }
        next_close = t + days(rng.exponential(std::max(0.05, spec.forced_close_mean_days)));
        continue;
      }
      emit_update(t, app, spec, rng);
      const double period_s = spec.period.at(t.day_index()).seconds();
      const double sigma = spec.period_jitter;
      t += sec(std::max(1.0, rng.lognormal(std::log(period_s) - 0.5 * sigma * sigma, sigma)));
    }
  }

  void emit_reset_phase_periodic(AppId app, const PeriodicSpec& spec, Rng& rng) {
    const auto it = fg_intervals_.find(app);
    if (it == fg_intervals_.end()) return;
    for (const auto& [begin, end] : it->second) {
      // The timer re-arms when the app leaves the foreground and keeps
      // firing until the next session or a forced stop.
      const TimePoint stop =
          std::min({next_session_after(app, end),
                    end + hours(rng.exponential(spec.restart_mean_hours)), study_end()});
      const double period_s = spec.period.at(end.day_index()).seconds();
      TimePoint t = end + sec(period_s * rng.lognormal(-0.5 * spec.period_jitter * spec.period_jitter,
                                                       spec.period_jitter));
      while (t < stop) {
        emit_update(t, app, spec, rng);
        t += sec(period_s *
                 rng.lognormal(-0.5 * spec.period_jitter * spec.period_jitter, spec.period_jitter));
      }
    }
  }

  // -- phase 5: sort and emit -------------------------------------------------

  void emit_stream(trace::TraceSink& sink, std::size_t batch_size) {
    std::stable_sort(packets_.begin(), packets_.end(),
                     [](const PacketRecord& a, const PacketRecord& b) { return a.time < b.time; });
    std::stable_sort(transitions_.begin(), transitions_.end(),
                     [](const StateTransition& a, const StateTransition& b) {
                       return a.time < b.time;
                     });
    // Merge; transitions win ties so a session's packets follow its
    // transition into the new state.
    std::size_t pi = 0;
    std::size_t ti = 0;
    if (batch_size == 0) {
      while (pi < packets_.size() || ti < transitions_.size()) {
        const bool take_transition =
            ti < transitions_.size() &&
            (pi >= packets_.size() || transitions_[ti].time <= packets_[pi].time);
        if (take_transition) {
          sink.on_transition(transitions_[ti++]);
        } else {
          sink.on_packet(packets_[pi++]);
        }
      }
      return;
    }
    // Batched delivery: same merge, buffered into spans of batch_size events.
    trace::EventBatch batch;
    batch.user = user_;
    batch.reserve(std::min(batch_size, packets_.size() + transitions_.size()));
    while (pi < packets_.size() || ti < transitions_.size()) {
      const bool take_transition =
          ti < transitions_.size() &&
          (pi >= packets_.size() || transitions_[ti].time <= packets_[pi].time);
      if (take_transition) {
        batch.add(transitions_[ti++]);
      } else {
        batch.add(packets_[pi++]);
      }
      if (batch.size() >= batch_size) {
        sink.on_batch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) sink.on_batch(batch);
  }

  const StudyConfig& config_;
  const appmodel::AppCatalog& catalog_;
  UserId user_;
  UserPlan plan_;
  DiurnalProfile diurnal_;  ///< per-user rhythm (shared curve at paper defaults)
  std::vector<Session> sessions_;
  std::unordered_map<AppId, std::vector<std::pair<TimePoint, TimePoint>>> fg_intervals_;
  std::vector<PacketRecord> packets_;
  std::vector<StateTransition> transitions_;
  trace::FlowId next_flow_ = 1;
  double wifi_hours_ = 0.0;   ///< daily WiFi window length (0 = disabled)
  double wifi_start_ = 20.0;  ///< window start, hour of day
};

}  // namespace

StudyGenerator::StudyGenerator(StudyConfig config)
    : config_(config),
      catalog_(appmodel::AppCatalog::full_catalog(config.seed, config.total_apps)) {}

StudyGenerator::StudyGenerator(StudyConfig config, appmodel::AppCatalog catalog)
    : config_(config), catalog_(std::move(catalog)) {}

trace::StudyMeta StudyGenerator::meta() const {
  trace::StudyMeta meta;
  meta.num_users = config_.num_users;
  meta.num_apps = static_cast<std::uint32_t>(catalog_.size());
  meta.study_begin = config_.study_begin();
  meta.study_end = config_.study_end();
  return meta;
}

void StudyGenerator::run(trace::TraceSink& sink, std::size_t batch_size) const {
  sink.on_study_begin(meta());
  for (UserId u = 0; u < config_.num_users; ++u) {
    sink.on_user_begin(u);
    UserSim{config_, catalog_, u}.generate(sink, batch_size);
    sink.on_user_end(u);
  }
  sink.on_study_end();
}

void StudyGenerator::run_user(trace::UserId user, trace::TraceSink& sink,
                              std::size_t batch_size) const {
  sink.on_study_begin(meta());
  sink.on_user_begin(user);
  UserSim{config_, catalog_, user}.generate(sink, batch_size);
  sink.on_user_end(user);
  sink.on_study_end();
}

}  // namespace wildenergy::sim
