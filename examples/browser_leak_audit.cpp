// Browser leak audit (paper §4.1): quantify foreground traffic that is not
// terminated on minimize, per browser, and estimate the energy an OS-level
// leak-termination feature would recover.
//
//   $ ./example_browser_leak_audit
//
// Demonstrates: PersistenceAnalysis, LeakTerminationPolicy, and per-app
// ledger queries on the same study.
#include <iostream>
#include <memory>

#include "analysis/persistence.h"
#include "core/pipeline.h"
#include "core/policy.h"
#include "sim/generator.h"
#include "util/table.h"

int main() {
  using namespace wildenergy;

  sim::StudyConfig config = sim::small_study(/*seed=*/11);
  config.num_users = 10;
  config.num_days = 90;

  // One generator feeds both passes: its per-user streams are deterministic
  // replays, so the two pipelines see byte-identical events.
  sim::StudyGenerator generator{config};

  // Pass 1: observe the leak.
  core::StudyPipeline pipeline{&generator};
  analysis::PersistenceAnalysis persistence{minutes(10.0)};
  pipeline.add_analysis(&persistence);
  pipeline.run();

  std::cout << "=== Browser background-leak audit (" << config.num_users << " users, "
            << config.num_days << " days) ===\n\n";

  TextTable table({"browser", "fg->bg transitions", "median persist", "p99 persist",
                   ">1h persist %", "bg energy share %"});
  for (const char* name : {"Chrome", "Firefox", "Browser"}) {
    const trace::AppId id = generator.catalog().find(name);
    if (id == trace::kNoApp) continue;
    auto& dist = persistence.durations(id);
    const auto acc = pipeline.ledger().app_total(id);
    const double bg_share = acc.joules > 0 ? 100.0 * acc.background_joules() / acc.joules : 0.0;
    table.add_row({name, std::to_string(dist.count()),
                   format_duration(sec(dist.percentile(0.5))),
                   format_duration(sec(dist.percentile(0.99))),
                   fmt(100 * persistence.fraction_persisting_longer_than(id, hours(1.0)), 2),
                   fmt(bg_share, 1)});
  }
  table.print(std::cout);

  // Pass 2: same study with OS-level leak termination (§6 recommendation).
  core::StudyPipeline fixed{&generator};
  fixed.set_policy([](trace::TraceSink* downstream) {
    return std::make_unique<core::LeakTerminationPolicy>(downstream);
  });
  fixed.run();

  std::cout << "\nWith OS-level termination of foreground-initiated flows on minimize:\n";
  for (const char* name : {"Chrome", "Firefox", "Browser"}) {
    const trace::AppId id = generator.catalog().find(name);
    const double before = pipeline.ledger().app_total(id).joules;
    const double after = fixed.ledger().app_total(id).joules;
    if (before <= 0) continue;
    std::cout << "  " << name << ": " << fmt(before / 1e3, 1) << " kJ -> "
              << fmt(after / 1e3, 1) << " kJ  (" << fmt(100.0 * (before - after) / before, 1)
              << "% recovered)\n";
  }
  std::cout << "\nChrome recovers the most: it is the only browser that lets pages keep\n"
               "polling from the background (the paper's §4.1 finding). Sub-percent\n"
               "negative deltas on leak-free browsers are tail re-attribution noise:\n"
               "with Chrome's leak packets gone, nearby apps absorb different tails.\n";
  return 0;
}
