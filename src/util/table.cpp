#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace wildenergy {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        for (std::size_t pad = row[c].size(); pad < widths[c] + 2; ++pad) os << ' ';
      }
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) rule.emplace_back(widths[c], '-');
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

namespace {
void csv_field(std::ostream& os, const std::string& f) {
  if (f.find_first_of(",\"\n") == std::string::npos) {
    os << f;
    return;
  }
  os << '"';
  for (char ch : f) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      csv_field(os, row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sig(double v, int sig_digits) {
  if (v == 0.0) return "0";
  const double mag = std::abs(v);
  if (mag >= 1e6) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*gM", sig_digits, v / 1e6);
    return buf;
  }
  if (mag >= 1e3) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*gk", sig_digits, v / 1e3);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", sig_digits, v);
  return buf;
}

std::string fmt_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B", bytes);
  }
  return buf;
}

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0 || value <= 0 || width <= 0) return "";
  const int n = std::clamp(
      static_cast<int>(std::lround(value / max_value * static_cast<double>(width))), 0, width);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace wildenergy
