// Figure 6: "Total background data sent by all apps, as a function of the
// time since switching from a foreground state."
//
// Paper shape: (1) far more traffic in the first minute than any later time,
// (2) periodic spikes at 5- and 10-minute offsets, (3) a long tail of
// persisting flows. Criterion: "we look for apps where 80% of the background
// traffic is sent within 60 seconds of the app going to the background.
// 84% of apps meet this criteria."
#include <iostream>

#include "analysis/time_since_fg.h"
#include "core/pipeline.h"
#include "sim/generator.h"
#include "util/table.h"

#include "bench_util.h"

int main() {
  using namespace wildenergy;
  const sim::StudyConfig cfg = benchutil::config_from_env();
  benchutil::print_header("Figure 6: background bytes vs time since foreground", cfg);

  sim::StudyGenerator generator{cfg};
  core::StudyPipeline pipeline{&generator};
  analysis::TimeSinceForegroundAnalysis tsf{hours(1.0), sec(30.0)};
  pipeline.add_analysis(&tsf);
  const auto run_stats = pipeline.run();
  if (!run_stats.ok()) return 1;

  const auto& hist = tsf.bytes_histogram();
  double max_mass = 0.0;
  for (std::size_t i = 0; i < hist.bins(); ++i) max_mass = std::max(max_mass, hist.bin_mass(i));

  TextTable table({"time since fg", "bg MB", ""});
  for (std::size_t i = 0; i < hist.bins() && hist.bin_lo(i) < 1800.0; ++i) {
    table.add_row({format_duration(sec(hist.bin_lo(i))), fmt(hist.bin_mass(i) / 1e6, 1),
                   ascii_bar(hist.bin_mass(i), max_mass, 40)});
  }
  table.print(std::cout);

  const double first_minute =
      hist.bin_mass(0) + hist.bin_mass(1);  // 30 s bins: [0,30) + [30,60)
  std::cout << "\nfirst-minute share of tracked bg bytes: "
            << fmt(100 * first_minute / hist.total_mass(), 1) << "%\n";

  std::cout << "spike offsets detected (paper: 5 and 10 minutes, plus harmonics): ";
  const auto spikes = tsf.spike_offsets_seconds(8);
  if (spikes.empty()) std::cout << "none";
  for (double s : spikes) std::cout << fmt(s / 60.0, 1) << " min  ";
  std::cout << "\n";

  std::cout << "apps sending >=80% of bg bytes within 60 s: "
            << fmt(100 * tsf.fraction_of_apps_frontloaded(), 1) << "%  (paper: 84%)\n";
  benchutil::report_perf("fig6_time_since_fg", cfg, run_stats.value());
  return 0;
}
