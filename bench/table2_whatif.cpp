// Table 2: what-if analysis — suppressing background traffic of apps idle
// for three consecutive days (§5).
//
// Rows: A = % of traffic days with only background traffic; B = max
// consecutive background-only days (bounded by foreground days); C = average
// per-user % energy saved by the kill-after-3-days policy.
//
// Paper shape: Weibo's energy "more than halved" (54%); overall savings
// across all apps < 1%; for the users running Weibo the device-level saving
// on affected days is ~16%.
//
// This bench computes the day-granularity estimate (analysis/whatif.h) AND
// re-runs the whole study through the packet-level KillAfterIdlePolicy
// (core/policy.h) to validate the estimate against exact radio-model
// accounting.
#include <iostream>
#include <memory>

#include "analysis/whatif.h"
#include "core/pipeline.h"
#include "sim/generator.h"
#include "core/policy.h"
#include "util/table.h"

#include "bench_util.h"

int main() {
  using namespace wildenergy;
  const sim::StudyConfig cfg = benchutil::config_from_env(/*default_days=*/623);
  benchutil::print_header("Table 2: preemptively killing idle background apps", cfg);

  sim::StudyGenerator generator{cfg};
  core::StudyPipeline pipeline{&generator};
  pipeline.run();
  const auto& ledger = pipeline.ledger();
  const auto& catalog = generator.catalog();

  const char* apps[] = {"Samsung Push", "Weibo",   "Messenger",
                        "ESPN",         "4shared", "Stock Weather"};

  TextTable table({"metric", "Samsung Push", "Weibo", "Messenger", "ESPN", "4shared",
                   "Stock Weather"});
  std::vector<std::string> row_a{"A: % days with only bg traffic"};
  std::vector<std::string> row_b{"B: max consecutive bg days"};
  std::vector<std::string> row_c{"C: kill after 3 days: avg % energy saved"};
  for (const char* name : apps) {
    const trace::AppId id = catalog.find(name);
    const auto row = analysis::whatif_kill_after(ledger, id, 3);
    row_a.push_back(fmt(row.pct_days_background_only, 0));
    row_b.push_back(std::to_string(row.max_consecutive_bg_days));
    row_c.push_back(fmt(row.pct_energy_saved, 1));
  }
  table.add_row(row_a);
  table.add_row(row_b);
  table.add_row(row_c);
  table.print(std::cout);

  // The paper's "<1% on average overall" applies the policy to the studied
  // apps and divides by fleet-wide energy (each app individually is a small
  // share of a user's total). Report that, the indiscriminate all-apps
  // variant, and the paper's own refinement: whitelisting widgets and push
  // services that legitimately live in the background.
  double six_apps_saved = 0.0;
  for (const char* name : apps) {
    six_apps_saved += analysis::whatif_kill_after(ledger, catalog.find(name), 3).saved_joules;
  }
  std::cout << "\nsix studied apps vs fleet-wide energy: "
            << fmt(100.0 * six_apps_saved / ledger.total_joules(), 2)
            << "% saved  (paper: <1% on average; depends on how many users run them)\n";

  const auto overall = analysis::whatif_overall(ledger, 3);
  std::cout << "policy applied to ALL apps:            " << fmt(overall.pct_saved(), 2)
            << "% saved\n";
  double whitelisted_saved = 0.0;
  for (trace::AppId app : ledger.apps()) {
    const auto& profile = catalog[app];
    if (profile.category == appmodel::AppCategory::kWidget ||
        profile.category == appmodel::AppCategory::kPushService ||
        profile.category == appmodel::AppCategory::kMediaPlayer) {
      continue;  // "a new permission or whitelist could address corner cases"
    }
    whitelisted_saved += analysis::whatif_kill_after(ledger, app, 3).saved_joules;
  }
  std::cout << "ALL apps, widgets/push/media whitelisted: "
            << fmt(100.0 * whitelisted_saved / ledger.total_joules(), 2) << "% saved\n";
  const double weibo_affected =
      analysis::pct_saved_on_affected_days(ledger, catalog.find("Weibo"), 3);
  std::cout << "Weibo users, device-level savings on affected days: " << fmt(weibo_affected, 1)
            << "%  (paper: 16%)\n";

  // Exact validation: re-run the study with the packet-level policy so the
  // radio model recomputes tails over the filtered stream.
  sim::StudyGenerator filtered_gen{cfg};
  core::StudyPipeline filtered{&filtered_gen};
  filtered.set_policy([](trace::TraceSink* downstream) {
    return std::make_unique<core::KillAfterIdlePolicy>(downstream, days(3.0));
  });
  filtered.run();
  const double exact_saved =
      ledger.total_joules() - filtered.ledger().total_joules();
  std::cout << "\npacket-level policy re-run (exact tails): saved "
            << fmt(100.0 * exact_saved / ledger.total_joules(), 2)
            << "% of total network energy vs day-granularity estimate "
            << fmt(overall.pct_saved(), 2) << "%\n";
  return 0;
}
