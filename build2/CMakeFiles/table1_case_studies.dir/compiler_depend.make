# Empty compiler generated dependencies file for table1_case_studies.
# This may be replaced when dependencies are built.
