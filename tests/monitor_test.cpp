// Tests for the Monsoon-style power monitor emulation (power/monitor.h):
// sampled energy must agree with the analytic model — the calibration loop
// the paper ran against real hardware.
#include <gtest/gtest.h>

#include "power/monitor.h"
#include "radio/burst_machine.h"

namespace wildenergy::power {
namespace {

radio::RadioTimeline make_timeline(int bursts, double gap_s) {
  radio::BurstMachine lte{radio::lte_params()};
  radio::RadioTimeline tl;
  TimePoint t{0};
  for (int i = 0; i < bursts; ++i) {
    lte.on_transfer({t, 20'000, radio::Direction::kDownlink}, tl.sink());
    t += sec(gap_s);
  }
  lte.finish(t + minutes(1.0), tl.sink());
  return tl;
}

TEST(PowerMonitor, SampledEnergyMatchesAnalytic) {
  const auto tl = make_timeline(5, 30.0);
  ASSERT_TRUE(tl.is_contiguous());
  const double err = calibration_error(tl, {.sample_rate_hz = 5000.0});
  EXPECT_LT(err, 0.01);  // < 1% at Monsoon's 5 kHz
}

TEST(PowerMonitor, ErrorShrinksWithSampleRate) {
  const auto tl = make_timeline(3, 20.0);
  const double coarse = calibration_error(tl, {.sample_rate_hz = 20.0});
  const double fine = calibration_error(tl, {.sample_rate_hz = 5000.0});
  EXPECT_LT(fine, coarse + 1e-12);
}

TEST(PowerMonitor, SampleCountMatchesRateAndSpan) {
  const auto tl = make_timeline(1, 0.0);
  PowerMonitor monitor{{.sample_rate_hz = 1000.0}};
  const auto samples = monitor.sample(tl);
  const double span_s = (tl.end_time() - tl.begin_time()).seconds();
  EXPECT_NEAR(static_cast<double>(samples.size()), span_s * 1000.0, 2.0);
}

TEST(PowerMonitor, NoiseIsZeroMeanish) {
  const auto tl = make_timeline(4, 40.0);
  const PowerMonitor clean{{.sample_rate_hz = 1000.0}};
  const PowerMonitor noisy{{.sample_rate_hz = 1000.0, .noise_stddev_w = 0.05, .seed = 9}};
  const double e_clean = integrate_joules(clean.sample(tl));
  const double e_noisy = integrate_joules(noisy.sample(tl));
  EXPECT_NEAR(e_noisy, e_clean, e_clean * 0.02);
}

TEST(PowerMonitor, CurrentReadoutUsesVoltage) {
  PowerMonitor monitor{{.voltage = 4.2}};
  EXPECT_NEAR(monitor.amps({TimePoint{0}, 2.1}), 0.5, 1e-12);
}

TEST(PowerMonitor, EmptyTimeline) {
  radio::RadioTimeline tl;
  PowerMonitor monitor;
  EXPECT_TRUE(monitor.sample(tl).empty());
  EXPECT_EQ(calibration_error(tl), 0.0);
}

// Property sweep: calibration holds across radio technologies.
class MonitorAcrossModels : public ::testing::TestWithParam<const char*> {};

TEST_P(MonitorAcrossModels, CalibrationUnder2Percent) {
  std::unique_ptr<radio::RadioModel> model;
  const std::string_view which = GetParam();
  if (which == "lte") model = radio::make_lte_model();
  if (which == "lte_fd") model = radio::make_lte_fast_dormancy_model();
  if (which == "umts") model = radio::make_umts_model();
  if (which == "wifi") model = radio::make_wifi_model();
  ASSERT_NE(model, nullptr);

  radio::RadioTimeline tl;
  TimePoint t{0};
  for (int i = 0; i < 8; ++i) {
    model->on_transfer({t, 50'000, radio::Direction::kUplink}, tl.sink());
    t += sec(i % 2 ? 3.0 : 25.0);
  }
  model->finish(t + minutes(1.0), tl.sink());
  EXPECT_LT(calibration_error(tl, {.sample_rate_hz = 5000.0}), 0.02) << which;
}

INSTANTIATE_TEST_SUITE_P(AllModels, MonitorAcrossModels,
                         ::testing::Values("lte", "lte_fd", "umts", "wifi"));

}  // namespace
}  // namespace wildenergy::power
