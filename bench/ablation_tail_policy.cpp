// Ablation (DESIGN.md §4.1): the paper's tail-to-last-packet attribution vs
// a proportional-by-bytes split.
//
// Both conserve the device total by construction; the question is how much
// the *per-app ranking* depends on the rule — i.e., whether the paper's
// conclusions are robust to this methodological choice.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/pipeline.h"
#include "sim/generator.h"
#include "util/table.h"

#include "bench_util.h"

int main() {
  using namespace wildenergy;
  const sim::StudyConfig cfg = benchutil::config_from_env(/*default_days=*/100);
  benchutil::print_header("Ablation: tail attribution rule (last-packet vs proportional)", cfg);

  sim::StudyGenerator last_gen{cfg};
  core::StudyPipeline last{&last_gen};
  last.run();

  core::PipelineOptions options;
  options.tail_policy = energy::TailPolicy::kProportional;
  sim::StudyGenerator prop_gen{cfg};
  core::StudyPipeline prop{&prop_gen, options};
  prop.run();

  std::cout << "device totals: last-packet " << fmt(last.ledger().total_joules() / 1e3, 1)
            << " kJ, proportional " << fmt(prop.ledger().total_joules() / 1e3, 1)
            << " kJ (must match: same radio activity)\n\n";

  // Compare per-app energies for the top-15 energy apps.
  auto ranked = [](const energy::EnergyLedger& ledger) {
    std::vector<std::pair<double, trace::AppId>> out;
    for (trace::AppId app : ledger.apps()) out.emplace_back(ledger.app_total(app).joules, app);
    std::sort(out.rbegin(), out.rend());
    return out;
  };
  const auto top = ranked(last.ledger());

  TextTable table({"app", "last-packet kJ", "proportional kJ", "delta %"});
  double max_delta = 0.0;
  for (std::size_t i = 0; i < std::min<std::size_t>(15, top.size()); ++i) {
    const trace::AppId app = top[i].second;
    const double a = top[i].first;
    const double b = prop.ledger().app_total(app).joules;
    const double delta = a > 0 ? 100.0 * (b - a) / a : 0.0;
    max_delta = std::max(max_delta, std::abs(delta));
    table.add_row({last_gen.catalog().name(app), fmt(a / 1e3, 2), fmt(b / 1e3, 2), fmt(delta, 2)});
  }
  table.print(std::cout);

  // Rank stability (Spearman-ish: count of top-10 membership changes).
  const auto top_prop = ranked(prop.ledger());
  std::size_t shared = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, top.size()); ++i) {
    for (std::size_t j = 0; j < std::min<std::size_t>(10, top_prop.size()); ++j) {
      if (top[i].second == top_prop[j].second) {
        ++shared;
        break;
      }
    }
  }
  std::cout << "\nmax per-app delta among top-15: " << fmt(max_delta, 2) << "%\n"
            << "top-10 energy apps shared between rules: " << shared
            << "/10\nconclusion: the paper's rankings are robust to the attribution rule when\n"
               "apps rarely share radio wakeups; deltas concentrate in chatty concurrent apps.\n";
  return 0;
}
