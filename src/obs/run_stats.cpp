#include "obs/run_stats.h"

#include <ostream>

#include "obs/json.h"
#include "util/table.h"

namespace wildenergy::obs {

void StageStats::merge_from(const StageStats& other) {
  if (name.empty()) name = other.name;
  self_ms += other.self_ms;
  packets += other.packets;
  transitions += other.transitions;
  bytes += other.bytes;
  batch_latency_us.merge_from(other.batch_latency_us);
}

void RunStats::print(std::ostream& os) const {
  os << "-- run stats --\n"
     << "wall time:     " << fmt(wall_ms, 1) << " ms";
  if (num_threads > 1) os << " (" << num_threads << " worker threads)";
  os << "\n"
     << "throughput:    " << fmt_sig(packets_per_sec()) << " packets/s, "
     << fmt_bytes(bytes_per_sec()) << "/s\n"
     << "stream:        " << users << " users, " << packets << " packets, " << fmt_bytes(static_cast<double>(bytes))
     << ", " << transitions << " transitions\n"
     << "off-interface: " << off_interface_packets << " packets ("
     << fmt_bytes(static_cast<double>(off_interface_bytes)) << ") dropped before attribution\n"
     << "energy:        " << fmt(joules / 1e3, 1) << " kJ attributed\n";

  os << "attribution:   " << tail_attributions << " tail attributions";
  if (proportional_splits > 0) os << " (" << proportional_splits << " proportional splits)";
  os << ", " << promotion_segments << " promotions, " << transfer_segments << " transfers, "
     << tail_segments << " tail segments (" << drx_segments << " DRX), " << idle_segments
     << " idle\n";
  os << "radio:         " << radio_bursts << " bursts (" << radio_bursts_queued
     << " queued behind airtime), " << radio_promotions << " promotions, " << radio_repromotions
     << " re-promotions\n";

  if (memory.tracked_bytes() > 0 || memory.peak_rss_bytes > 0) {
    os << "memory:        ledger " << fmt_bytes(static_cast<double>(memory.ledger.resident_bytes))
       << ", analyses " << fmt_bytes(static_cast<double>(memory.analyses.resident_bytes));
    if (memory.store.resident_bytes > 0) {
      os << ", trace store " << fmt_bytes(static_cast<double>(memory.store.resident_bytes));
    }
    const std::uint64_t spilled = memory.store.spilled_bytes + memory.ledger.spilled_bytes +
                                  memory.analyses.spilled_bytes;
    if (spilled > 0) {
      os << ", spilled " << fmt_bytes(static_cast<double>(spilled)) << " on disk";
    }
    if (memory.accounts.total_bytes() > 0) {
      os << ", account files " << fmt_bytes(static_cast<double>(memory.accounts.spilled_bytes))
         << " (+" << fmt_bytes(static_cast<double>(memory.accounts.resident_bytes))
         << " pending)";
    }
    os << "; peak RSS " << fmt_bytes(static_cast<double>(memory.peak_rss_bytes)) << "\n";
  }

  if (shard_retries > 0 || !failed_users.empty()) {
    os << "resilience:    " << shard_retries << " shard retr" << (shard_retries == 1 ? "y" : "ies")
       << ", " << failed_users.size() << " user(s) skipped";
    if (!failed_users.empty()) {
      os << " (";
      for (std::size_t i = 0; i < failed_users.size(); ++i) {
        if (i > 0) os << ", ";
        os << failed_users[i];
      }
      os << ")";
    }
    os << "\n";
  }

  if (checkpoints_written > 0 || checkpoint_write_failures > 0 || resumed_users > 0 ||
      recovered_from_seq > 0) {
    os << "checkpoints:   " << checkpoints_written << " written ("
       << fmt_bytes(static_cast<double>(checkpoint_bytes)) << ")";
    if (checkpoint_write_failures > 0) {
      os << ", " << checkpoint_write_failures << " write failure(s)";
    }
    if (resumed_users > 0) os << "; resumed past " << resumed_users << " completed user(s)";
    if (recovered_from_seq > 0) {
      os << "; recovered from seq " << recovered_from_seq << " (newer checkpoints damaged)";
    }
    os << "\n";
  }

  if (!shards.empty()) {
    os << "\n-- per-shard (user) breakdown --\n";
    TextTable shard_table({"user", "worker", "wall (ms)", "packets", "joules", "attempts"});
    for (const auto& s : shards) {
      shard_table.add_row({std::to_string(s.user), std::to_string(s.worker), fmt(s.wall_ms, 1),
                           std::to_string(s.packets), fmt(s.joules, 1),
                           s.skipped ? "skipped: " + s.status.message()
                                     : std::to_string(s.attempts)});
    }
    shard_table.print(os);
    if (serial_fallback_sinks > 0) {
      os << "(" << serial_fallback_sinks
         << " non-shardable sink(s) fed by an extra serial replay pass)\n";
    }
  }

  if (!timed || stages.empty()) {
    os << "(per-stage breakdown not collected; enable stage stats / --stats)\n";
    return;
  }

  double accounted = 0.0;
  bool any_latency = false;
  for (const auto& s : stages) {
    accounted += s.self_ms;
    any_latency = any_latency || s.batch_latency_us.count() > 0;
  }

  os << "\n-- per-stage self time --\n";
  std::vector<std::string> headers{"stage", "self (ms)", "% wall", "packets", "transitions",
                                   "Mpkt/s"};
  if (any_latency) {
    headers.insert(headers.end(), {"batches", "p50 (us)", "p95 (us)", "p99 (us)"});
  }
  TextTable table(headers);
  for (const auto& s : stages) {
    std::vector<std::string> row{s.name, fmt(s.self_ms, 1),
                                 fmt(wall_ms > 0.0 ? 100.0 * s.self_ms / wall_ms : 0.0, 1),
                                 std::to_string(s.packets), std::to_string(s.transitions),
                                 fmt(s.packets_per_sec() / 1e6, 2)};
    if (any_latency) {
      const Histogram& h = s.batch_latency_us;
      row.push_back(std::to_string(h.count()));
      row.push_back(fmt(h.percentile(0.50), 1));
      row.push_back(fmt(h.percentile(0.95), 1));
      row.push_back(fmt(h.percentile(0.99), 1));
    }
    table.add_row(row);
  }
  table.print(os);
  if (num_threads > 1) {
    os << "(stage self times are summed across " << shards.size()
       << " shard chains: " << fmt(accounted, 1) << " ms of CPU over " << fmt(wall_ms, 1)
       << " ms wall)\n";
  } else {
    os << "(self times sum to " << fmt(accounted, 1) << " ms of " << fmt(wall_ms, 1)
       << " ms wall)\n";
  }
}

void RunStats::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("schema", "wildenergy.run_stats.v2");
  w.kv("wall_ms", wall_ms);
  w.kv("num_threads", num_threads);
  w.kv("users", users);
  w.kv("packets", packets);
  w.kv("transitions", transitions);
  w.kv("bytes", bytes);
  w.kv("off_interface_packets", off_interface_packets);
  w.kv("off_interface_bytes", off_interface_bytes);
  w.kv("joules", joules);
  w.kv("packets_per_sec", packets_per_sec());

  w.key("attribution");
  w.begin_object();
  w.kv("tail_attributions", tail_attributions);
  w.kv("proportional_splits", proportional_splits);
  w.kv("promotion_segments", promotion_segments);
  w.kv("transfer_segments", transfer_segments);
  w.kv("tail_segments", tail_segments);
  w.kv("drx_segments", drx_segments);
  w.kv("idle_segments", idle_segments);
  w.end_object();

  w.key("radio");
  w.begin_object();
  w.kv("bursts", radio_bursts);
  w.kv("bursts_queued", radio_bursts_queued);
  w.kv("promotions", radio_promotions);
  w.kv("repromotions", radio_repromotions);
  w.end_object();

  w.key("memory");
  w.begin_object();
  w.kv("ledger_bytes", memory.ledger.resident_bytes);
  w.kv("ledger_spilled_bytes", memory.ledger.spilled_bytes);
  w.kv("analyses_bytes", memory.analyses.resident_bytes);
  w.kv("analyses_spilled_bytes", memory.analyses.spilled_bytes);
  w.kv("store_bytes", memory.store.resident_bytes);
  w.kv("store_spilled_bytes", memory.store.spilled_bytes);
  w.kv("account_bytes", memory.accounts.resident_bytes);
  w.kv("account_spilled_bytes", memory.accounts.spilled_bytes);
  w.kv("tracked_bytes", memory.tracked_bytes());
  w.kv("peak_rss_bytes", memory.peak_rss_bytes);
  w.end_object();

  w.key("resilience");
  w.begin_object();
  w.kv("shard_retries", shard_retries);
  w.kv("serial_fallback_sinks", serial_fallback_sinks);
  w.key("failed_users");
  w.begin_array();
  for (const std::uint64_t u : failed_users) w.value(u);
  w.end_array();
  // Additive checkpoint/resume counters; schema stays v2.
  w.kv("checkpoints_written", checkpoints_written);
  w.kv("checkpoint_bytes", checkpoint_bytes);
  w.kv("checkpoint_write_failures", checkpoint_write_failures);
  w.kv("resumed_users", resumed_users);
  w.kv("recovered_from_seq", recovered_from_seq);
  w.end_object();

  w.kv("timed", timed);
  w.key("stages");
  w.begin_array();
  for (const auto& s : stages) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("self_ms", s.self_ms);
    w.kv("packets", s.packets);
    w.kv("transitions", s.transitions);
    w.kv("bytes", s.bytes);
    if (s.batch_latency_us.count() > 0) {
      w.key("batch_latency_us");
      s.batch_latency_us.write_json(w);
    }
    w.end_object();
  }
  w.end_array();

  w.key("shards");
  w.begin_array();
  for (const auto& s : shards) {
    w.begin_object();
    w.kv("user", s.user);
    w.kv("worker", s.worker);
    w.kv("wall_ms", s.wall_ms);
    w.kv("packets", s.packets);
    w.kv("bytes", s.bytes);
    w.kv("joules", s.joules);
    w.kv("attempts", s.attempts);
    w.kv("skipped", s.skipped);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string RunStats::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace wildenergy::obs
