// §4.1 / Fig. 6: background data volume as a function of time since the app
// left the foreground.
//
// Reproduces the three features the paper calls out:
//   1. a steep falloff — most background bytes land in the first minute,
//   2. periodic spikes at 5- and 10-minute offsets (timers re-armed on the
//      background transition),
//   3. a long tail of persisting flows,
// plus the headline criterion: the fraction of apps that send >=80% of their
// background bytes within 60 s of going background ("84% of apps").
//
// Data-plane layout (DESIGN.md §12): app ids are dense and one user is live
// at a time, so the per-(user, app) tracking state is a flat per-app array
// for the current user (reset at each user bracket) and the tallies a dense
// per-app array — no hashing on the packet path.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ckpt/checkpointable.h"
#include "trace/shardable.h"
#include "trace/sink.h"
#include "util/stats.h"

namespace wildenergy::analysis {

class TimeSinceForegroundAnalysis final : public trace::TraceSink,
                                          public trace::ShardableSink,
                                          public ckpt::CheckpointableSink {
 public:
  /// `horizon`: how far past the transition the histogram extends.
  /// `bin`: histogram resolution (must divide the 5-min spike cleanly to
  /// keep the spikes visible; default 30 s).
  explicit TimeSinceForegroundAnalysis(Duration horizon = hours(2.0), Duration bin = sec(30.0));

  void on_study_begin(const trace::StudyMeta& meta) override;
  void on_user_begin(trace::UserId user) override;
  void on_packet(const trace::PacketRecord& packet) override;
  void on_transition(const trace::StateTransition& transition) override;
  void on_batch(const trace::EventBatch& batch) override;

  // ShardableSink: byte tallies add; the histogram merges binwise, which is
  // exact (order-free) because its masses are integer byte counts.
  [[nodiscard]] std::unique_ptr<trace::TraceSink> clone_shard() const override;
  void merge_from(trace::TraceSink& shard) override;

  // CheckpointableSink: histogram masses (raw bits, incl. the running total —
  // on_study_begin does NOT reset the ctor-shaped histogram, so restore
  // overwrites it wholesale) plus the per-app tallies. Per-user tracking
  // arrays reset at every user switch and are not serialized.
  void save_state(ckpt::ByteWriter& out) const override;
  [[nodiscard]] util::Status restore_state(ckpt::ByteReader& in) override;

  /// Histogram of background bytes vs seconds-since-foreground (all apps).
  [[nodiscard]] const Histogram& bytes_histogram() const { return histogram_; }

  struct AppTally {
    std::uint64_t bg_bytes = 0;
    std::uint64_t bg_bytes_first_minute = 0;
  };
  /// Per-app tallies (only packets after the app's first foreground use),
  /// app-ascending. Only apps with recorded traffic appear.
  [[nodiscard]] std::vector<std::pair<trace::AppId, AppTally>> app_tallies() const;

  /// The paper's criterion: fraction of apps (with >= min_bytes of tracked
  /// background traffic) sending >= `share` of it within the first 60 s.
  [[nodiscard]] double fraction_of_apps_frontloaded(double share = 0.8,
                                                    std::uint64_t min_bytes = 10'000) const;

  /// Spike detection: offsets (in seconds) of local maxima of the histogram
  /// beyond the first 2 minutes — the 5/10-minute timers of Fig. 6.
  [[nodiscard]] std::vector<double> spike_offsets_seconds(std::size_t max_spikes = 4) const;

  /// Approximate resident footprint: histogram bins plus the per-app
  /// tracking arrays and tallies.
  [[nodiscard]] obs::MemoryUse memory_use() const override;

 private:
  static constexpr trace::UserId kNoUser = UINT32_MAX;
  // Per-app tracking flags for the current user.
  static constexpr std::uint8_t kHasExit = 1;       ///< saw a fg->bg transition
  static constexpr std::uint8_t kInForeground = 2;  ///< currently foreground

  /// Reset the per-app tracking state when the stream moves to a new user.
  void switch_user(trace::UserId user);
  void handle_packet(const trace::PacketRecord& p);
  void handle_transition(const trace::StateTransition& t);
  void grow_tracking(trace::AppId app);

  Duration horizon_;
  Duration bin_;  ///< retained so clone_shard() rebuilds an identical histogram
  Histogram histogram_;
  /// Current user's tracking state, indexed by AppId.
  trace::UserId cur_user_ = kNoUser;
  std::vector<std::uint8_t> track_;
  std::vector<TimePoint> last_exit_;  ///< valid when track_[app] & kHasExit
  /// Study-wide per-app tallies (dense by AppId; touched_ = has an entry).
  std::vector<AppTally> tallies_;
  std::vector<bool> touched_;
};

}  // namespace wildenergy::analysis
