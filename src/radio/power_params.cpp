#include "radio/power_params.h"

namespace wildenergy::radio {

BurstMachineParams lte_params() {
  BurstMachineParams p;
  p.model_name = "LTE";
  p.idle_promotion = {msec(260), 1.2107, "LTE_PROMOTION"};
  p.active_power_w = 1.0604;
  p.active_state_name = "LTE_CRX";
  // alpha_u = 438.39 mW/Mbps, alpha_d = 51.97 mW/Mbps  =>  J per payload byte.
  p.joules_per_byte_up = 438.39e-3 / 1e6 * 8.0;
  p.joules_per_byte_down = 51.97e-3 / 1e6 * 8.0;
  p.downlink_bps = 12.74e6;
  p.uplink_bps = 5.64e6;
  p.min_transfer_time = msec(250);
  p.tail_phases = {
      {sec(1.0), 1.0604, "LTE_SHORT_DRX", {}},
      {sec(10.576), 0.80, "LTE_LONG_DRX", {}},
  };
  p.idle_power_w = 0.0114;
  return p;
}

BurstMachineParams lte_fast_dormancy_params() {
  BurstMachineParams p = lte_params();
  p.model_name = "LTE-FD";
  p.tail_phases = {
      {sec(1.5), 1.0604, "LTE_FD_TAIL", {}},
  };
  return p;
}

BurstMachineParams umts_params() {
  BurstMachineParams p;
  p.model_name = "UMTS";
  p.idle_promotion = {sec(2.0), 0.55, "UMTS_IDLE_TO_DCH"};
  p.active_power_w = 0.80;
  p.active_state_name = "UMTS_DCH";
  p.joules_per_byte_up = 0.9e-3 / 1e6 * 8.0 * 300.0;   // coarse: uplink costly
  p.joules_per_byte_down = 0.9e-3 / 1e6 * 8.0 * 60.0;  // coarse: downlink cheaper
  p.downlink_bps = 3.0e6;
  p.uplink_bps = 1.0e6;
  p.min_transfer_time = msec(400);
  p.tail_phases = {
      {sec(5.0), 0.80, "UMTS_DCH_TAIL", {}},
      {sec(12.0), 0.46, "UMTS_FACH_TAIL", {sec(1.5), 0.70, "UMTS_FACH_TO_DCH"}},
  };
  p.idle_power_w = 0.010;
  return p;
}

BurstMachineParams wifi_params() {
  BurstMachineParams p;
  p.model_name = "WiFi";
  p.idle_promotion = {};  // association assumed; no RRC-style ramp
  p.active_power_w = 0.77;
  p.active_state_name = "WIFI_ACTIVE";
  p.joules_per_byte_up = 0.10e-6;
  p.joules_per_byte_down = 0.05e-6;
  p.downlink_bps = 20.0e6;
  p.uplink_bps = 10.0e6;
  p.min_transfer_time = msec(30);
  p.tail_phases = {
      {msec(238), 0.77, "WIFI_TAIL", {}},
  };
  p.idle_power_w = 0.030;
  return p;
}

}  // namespace wildenergy::radio
