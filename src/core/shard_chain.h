// Internal: the per-shard sink chain shared by the sharded execution engines
// (core/pipeline.cpp and core/sweep.cpp).
//
// A shard is one unit of isolated work — one user in a pipeline run, one
// (scenario, user) pair in a sweep: clones of every shardable parent sink
// fanned out behind a private attributor / policy / interface-filter chain,
// plus the scheduling bookkeeping (attempts, wall time, status) the engines
// keep per shard. Building a chain is also how a failed one is retried: a
// fresh build has no partial state, so a re-run is the same deterministic
// computation (trace/shardable.h invariants).
//
// Everything here is built and merged serially by the engines — the policy
// factory and clone_shard() are not required to be thread-safe; only the
// radio factory runs on workers (inside EnergyAttributor::on_user_begin).
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "energy/attributor.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "trace/batch.h"
#include "trace/instrumented_sink.h"
#include "trace/interface_filter.h"
#include "trace/shardable.h"
#include "trace/sink.h"
#include "util/status.h"

namespace wildenergy::core::internal {

/// Everything needed to build one shard chain. One per engine run (or per
/// sweep scenario); cheap to copy.
struct ChainConfig {
  energy::RadioModelFactory radio_factory;
  energy::TailPolicy tail_policy = energy::TailPolicy::kLastPacket;
  PolicyFactory policy_factory;  ///< may be empty (no policy stage)
  trace::Interface interface = trace::Interface::kCellular;
  fault::FaultPlan* fault_plan = nullptr;  ///< non-owning; may be null
  /// Profile each chain stage on a shard-local PhaseStack (obs/stopwatch.h);
  /// the engines fold the per-shard StageStats into RunStats::stages.
  bool collect_stage_stats = false;
  /// Display names for the shardable sinks, parallel to the list passed to
  /// build_chain ("sink N" when absent). Only read when profiling.
  std::vector<std::string> sink_names;
};

/// One shard's private sink chain plus its scheduling record.
struct ShardChain {
  obs::MetricsRegistry registry;  ///< shard-local radio/ingest counters
  trace::TraceMulticast fanout;
  std::vector<std::unique_ptr<trace::TraceSink>> clones;  ///< parallel to the shardable list
  std::unique_ptr<energy::EnergyAttributor> attributor;
  std::unique_ptr<trace::TraceSink> policy;
  std::unique_ptr<trace::InterfaceFilter> filter;
  std::unique_ptr<trace::TraceSink> fault;  ///< FaultPlan decorator, if any
  trace::TraceSink* entry = nullptr;        ///< fault ? fault : filter
  // Stage profiling (ChainConfig::collect_stage_stats): every stage of this
  // chain copy is decorated with an InstrumentedSink on a shard-local
  // PhaseStack. `stage_order` lists the wrappers in display order — filter,
  // policy (if any), attribute, then the sinks in registration order — the
  // SAME shape for every shard of a run, so the engines can fold stage i of
  // every shard together.
  obs::PhaseStack phase_stack;
  std::vector<std::unique_ptr<trace::InstrumentedSink>> wrappers;
  std::vector<trace::InstrumentedSink*> stage_order;
  double wall_ms = 0.0;
  unsigned worker = 0;
  std::int64_t span_start_us = 0;
  unsigned attempts = 0;
  util::Status error;  ///< non-OK while the latest attempt has failed

  /// This chain's per-stage profile, in stage_order. Empty when not timed.
  [[nodiscard]] std::vector<obs::StageStats> stage_stats() const {
    std::vector<obs::StageStats> out;
    out.reserve(stage_order.size());
    for (const auto* w : stage_order) out.push_back(w->stats());
    return out;
  }
};

/// Build the chain for `user`: clones of `shardable` fanned out behind a
/// fresh attributor, optional policy filter, interface filter, and — when a
/// fault plan covers the user — the fault decorator at the entry.
/// Heap-allocated because the filter/attributor hold pointers into the
/// shard, so the objects must not move.
inline std::unique_ptr<ShardChain> build_chain(
    const ChainConfig& cfg, const std::vector<trace::ShardableSink*>& shardable,
    trace::UserId user) {
  auto shard = std::make_unique<ShardChain>();
  // When profiling, decorate each stage with an InstrumentedSink sharing the
  // shard's own PhaseStack — the same self-time discipline the serial
  // pipeline uses, replicated per chain copy (no cross-thread state).
  ShardChain* raw = shard.get();
  const auto wrap = [raw, &cfg](std::string name,
                                trace::TraceSink* sink) -> trace::TraceSink* {
    if (!cfg.collect_stage_stats) return sink;
    raw->wrappers.push_back(std::make_unique<trace::InstrumentedSink>(std::move(name), sink,
                                                                      &raw->phase_stack));
    return raw->wrappers.back().get();
  };
  std::vector<trace::InstrumentedSink*> sink_wrappers;
  for (std::size_t i = 0; i < shardable.size(); ++i) {
    shard->clones.push_back(shardable[i]->clone_shard());
    const std::string name =
        i < cfg.sink_names.size() ? cfg.sink_names[i] : "sink " + std::to_string(i);
    trace::TraceSink* wrapped = wrap(name, shard->clones.back().get());
    shard->fanout.add(wrapped);
    if (cfg.collect_stage_stats) sink_wrappers.push_back(shard->wrappers.back().get());
  }
  shard->attributor = std::make_unique<energy::EnergyAttributor>(cfg.radio_factory,
                                                                 &shard->fanout, cfg.tail_policy);
  trace::TraceSink* head = wrap("attribute", shard->attributor.get());
  trace::InstrumentedSink* attribute_wrapper =
      cfg.collect_stage_stats ? shard->wrappers.back().get() : nullptr;
  trace::InstrumentedSink* policy_wrapper = nullptr;
  if (cfg.policy_factory) {
    shard->policy = cfg.policy_factory(head);
    head = wrap("policy", shard->policy.get());
    if (cfg.collect_stage_stats) policy_wrapper = shard->wrappers.back().get();
  }
  shard->filter = std::make_unique<trace::InterfaceFilter>(head, cfg.interface);
  shard->entry = wrap("filter", shard->filter.get());
  if (cfg.collect_stage_stats) {
    shard->stage_order.push_back(shard->wrappers.back().get());  // filter
    if (policy_wrapper != nullptr) shard->stage_order.push_back(policy_wrapper);
    shard->stage_order.push_back(attribute_wrapper);
    shard->stage_order.insert(shard->stage_order.end(), sink_wrappers.begin(),
                              sink_wrappers.end());
  }
  if (cfg.fault_plan != nullptr) {
    // wrap() counts one attempt per call, so a retry's rebuild re-arms or
    // disarms the fault deterministically. The fault decorator sits above the
    // (possibly instrumented) filter so injected callbacks are profiled too.
    shard->fault = cfg.fault_plan->wrap(user, shard->entry);
    if (shard->fault != nullptr) shard->entry = shard->fault.get();
  }
  return shard;
}

/// Shardability adapter for custom sinks that do not implement
/// trace::ShardableSink. Every sink in the default analysis set is shardable;
/// a custom one the engines cannot shard gets wrapped in this adapter, which
/// slots into the standard clone/merge protocol:
///
///   - the parent forwards the study brackets to the wrapped sink,
///   - each clone captures its single user's annotated stream as columnar
///     events (a one-user recording, nothing is forwarded), and
///   - merge_from replays the captured user bracket into the wrapped sink.
///
/// Merges arrive in user-id order — exactly the serial stream order — so the
/// wrapped sink consumes the same surviving-user study a serial run would
/// have fed it (skipped users are never merged). The engines count adapted
/// sinks in RunStats::serial_fallback_sinks: the replay into the wrapped
/// sink is serial work at merge time, even though capture ran on workers.
class CollectSpliceSink final : public trace::TraceSink, public trace::ShardableSink {
 public:
  /// Parent mode wraps `target` (non-owning). Clones capture instead.
  explicit CollectSpliceSink(trace::TraceSink* target) : target_(target) {}

  void on_study_begin(const trace::StudyMeta& meta) override {
    if (target_ != nullptr) target_->on_study_begin(meta);
  }
  void on_study_end() override {
    if (target_ != nullptr) target_->on_study_end();
  }
  void on_user_begin(trace::UserId user) override {
    assert(!have_user_);  // engines send one user per clone
    have_user_ = true;
    user_ = user;
  }
  void on_packet(const trace::PacketRecord& p) override { events_.add(p); }
  void on_transition(const trace::StateTransition& t) override { events_.add(t); }
  void on_batch(const trace::EventBatch& batch) override {
    events_.packets.insert(events_.packets.end(), batch.packets.begin(), batch.packets.end());
    events_.transitions.insert(events_.transitions.end(), batch.transitions.begin(),
                               batch.transitions.end());
    events_.order.insert(events_.order.end(), batch.order.begin(), batch.order.end());
  }

  [[nodiscard]] std::unique_ptr<trace::TraceSink> clone_shard() const override {
    return std::make_unique<CollectSpliceSink>(nullptr);
  }
  void merge_from(trace::TraceSink& shard) override {
    auto& other = dynamic_cast<CollectSpliceSink&>(shard);
    if (!other.have_user_) return;
    target_->on_user_begin(other.user_);
    trace::replay(other.events_, *target_);
    target_->on_user_end(other.user_);
    other.events_.clear();
    other.have_user_ = false;
  }

  [[nodiscard]] obs::MemoryUse memory_use() const override {
    return {.resident_bytes = events_.packets.capacity() * sizeof(trace::PacketRecord) +
                              events_.transitions.capacity() * sizeof(trace::StateTransition) +
                              events_.order.capacity() * sizeof(trace::EventKind),
            .spilled_bytes = 0};
  }

 private:
  trace::TraceSink* target_;  ///< null in capture clones
  bool have_user_ = false;
  trace::UserId user_ = 0;
  trace::EventBatch events_;
};

}  // namespace wildenergy::core::internal
