#include "analysis/per_user.h"

#include <algorithm>

#include "energy/account_cursor.h"

namespace wildenergy::analysis {

std::vector<UserSummary> per_user_summaries(const energy::EnergyLedger& ledger,
                                            std::size_t top_apps, util::Status* status) {
  std::vector<UserSummary> out;
  util::Status st = energy::for_each_user_accounts(
      ledger, [&](trace::UserId user, std::span<const energy::AppUserAccount> accounts) {
        UserSummary s;
        s.user = user;
        double bg = 0.0;
        std::vector<const energy::AppUserAccount*> ranked;
        ranked.reserve(accounts.size());
        for (const auto& acc : accounts) {
          s.joules += acc.joules;
          s.bytes += acc.bytes;
          bg += acc.background_joules();
          ranked.push_back(&acc);
        }
        s.background_fraction = s.joules > 0 ? bg / s.joules : 0.0;
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto* a, const auto* b) { return a->joules > b->joules; });
        for (std::size_t i = 0; i < std::min(top_apps, ranked.size()); ++i) {
          s.top_apps.push_back(ranked[i]->app);
        }
        out.push_back(std::move(s));
      });
  if (status != nullptr) status->update(st);
  return out;
}

}  // namespace wildenergy::analysis
