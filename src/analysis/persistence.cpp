#include "analysis/persistence.h"

#include <algorithm>

namespace wildenergy::analysis {

PersistenceAnalysis::PersistenceAnalysis(Duration quiet_gap) : quiet_gap_(quiet_gap) {}

void PersistenceAnalysis::on_study_begin(const trace::StudyMeta&) {
  episodes_.clear();
  durations_.clear();
}

void PersistenceAnalysis::close(Episode& episode, trace::AppId app) {
  if (!episode.open) return;
  const double duration_s =
      episode.saw_traffic ? std::max(0.0, (episode.last_packet - episode.transition).seconds())
                          : 0.0;
  durations_[app].add(duration_s);
  episode.open = false;
}

void PersistenceAnalysis::on_transition(const trace::StateTransition& t) {
  auto& episode = episodes_[key(t.user, t.app)];
  if (t.is_fg_to_bg()) {
    close(episode, t.app);  // back-to-back fg->bg (e.g. fg->perceptible->bg)
    episode.transition = t.time;
    episode.last_packet = t.time;
    episode.open = true;
    episode.saw_traffic = false;
  } else if (t.is_bg_to_fg()) {
    close(episode, t.app);
  }
}

void PersistenceAnalysis::on_packet(const trace::PacketRecord& p) {
  if (trace::is_foreground(p.state)) return;
  const auto it = episodes_.find(key(p.user, p.app));
  if (it == episodes_.end() || !it->second.open) return;
  Episode& episode = it->second;
  const TimePoint reference = episode.saw_traffic ? episode.last_packet : episode.transition;
  if (p.time - reference > quiet_gap_) {
    // Quiet period ended the episode; later traffic (e.g. a periodic timer
    // hours later) is not "persisting foreground traffic".
    close(episode, p.app);
    return;
  }
  episode.last_packet = p.time;
  episode.saw_traffic = true;
}

std::unique_ptr<trace::TraceSink> PersistenceAnalysis::clone_shard() const {
  return std::make_unique<PersistenceAnalysis>(quiet_gap_);
}

void PersistenceAnalysis::merge_from(trace::TraceSink& shard) {
  auto& other = dynamic_cast<PersistenceAnalysis&>(shard);
  for (const auto& [app, dist] : other.durations_) durations_[app].merge_from(dist);
}

void PersistenceAnalysis::on_user_end(trace::UserId user) {
  for (auto& [k, episode] : episodes_) {
    if ((k >> 32) == user) close(episode, static_cast<trace::AppId>(k & 0xFFFFFFFFu));
  }
  episodes_.clear();
}

Distribution& PersistenceAnalysis::durations(trace::AppId app) { return durations_[app]; }

std::vector<trace::AppId> PersistenceAnalysis::tracked_apps() const {
  std::vector<trace::AppId> out;
  out.reserve(durations_.size());
  for (const auto& [app, dist] : durations_) out.push_back(app);
  std::sort(out.begin(), out.end());
  return out;
}

double PersistenceAnalysis::fraction_persisting_longer_than(trace::AppId app, Duration d) {
  auto it = durations_.find(app);
  if (it == durations_.end() || it->second.count() == 0) return 0.0;
  return 1.0 - it->second.cdf_at(d.seconds());
}

std::uint64_t PersistenceAnalysis::memory_bytes() const {
  // Hash nodes carry roughly a next pointer + cached hash next to the pair.
  constexpr std::uint64_t kNodeOverhead = 2 * sizeof(void*);
  std::uint64_t total =
      episodes_.size() * (kNodeOverhead + sizeof(std::uint64_t) + sizeof(Episode)) +
      episodes_.bucket_count() * sizeof(void*);
  total += durations_.bucket_count() * sizeof(void*);
  for (const auto& [app, dist] : durations_) {
    total += kNodeOverhead + sizeof(app) + sizeof(dist) + dist.count() * sizeof(double);
  }
  return total;
}

}  // namespace wildenergy::analysis
