// Resume decorators for serial (forward-only) streams.
//
// The sharded engine resumes by dropping completed users from its work list
// before building shards. Serial sources — CSV/binary files fed through
// `analyze`, or the serial pipeline path — replay every user in order, so
// resuming needs stream-level surgery instead: UserSkipFilter swallows the
// brackets of users a checkpoint already covers, and CheckpointingSink counts
// the users that do complete and fires a snapshot callback every N of them.
// Stacked as source -> UserSkipFilter -> CheckpointingSink -> real sinks, the
// pair makes a killed-and-resumed serial run fold the exact event stream an
// uninterrupted run would have seen.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "trace/sink.h"

namespace wildenergy::ckpt {

/// Drops the full bracket (begin/events/batches/end) of every user in the
/// completed set; everything else forwards untouched. Events arrive strictly
/// inside user brackets, so one flag per bracket suffices.
class UserSkipFilter final : public trace::TraceSink {
 public:
  UserSkipFilter(trace::TraceSink* downstream, std::vector<trace::UserId> completed)
      : downstream_(downstream), completed_(std::move(completed)) {
    std::sort(completed_.begin(), completed_.end());
  }

  void on_study_begin(const trace::StudyMeta& meta) override {
    downstream_->on_study_begin(meta);
  }
  void on_user_begin(trace::UserId user) override {
    skipping_ = std::binary_search(completed_.begin(), completed_.end(), user);
    if (skipping_) {
      ++skipped_users_;
      return;
    }
    downstream_->on_user_begin(user);
  }
  void on_packet(const trace::PacketRecord& packet) override {
    if (!skipping_) downstream_->on_packet(packet);
  }
  void on_transition(const trace::StateTransition& transition) override {
    if (!skipping_) downstream_->on_transition(transition);
  }
  void on_batch(const trace::EventBatch& batch) override {
    if (!skipping_) downstream_->on_batch(batch);
  }
  void on_user_end(trace::UserId user) override {
    if (skipping_) {
      skipping_ = false;
      return;
    }
    downstream_->on_user_end(user);
  }
  void on_study_end() override { downstream_->on_study_end(); }

  /// Users whose brackets were dropped (RunStats::resumed_users).
  [[nodiscard]] std::uint64_t skipped_users() const { return skipped_users_; }

 private:
  trace::TraceSink* downstream_;
  std::vector<trace::UserId> completed_;
  bool skipping_ = false;
  std::uint64_t skipped_users_ = 0;
};

/// Forwards everything, tracks which users have completed, and fires
/// `on_checkpoint` after every `every_users` completed brackets. The restore
/// hook (if set) fires right after on_study_begin has propagated — i.e. after
/// downstream sinks reset themselves — which is the only moment restoring
/// serialized partials into them is sound.
class CheckpointingSink final : public trace::TraceSink {
 public:
  CheckpointingSink(trace::TraceSink* downstream, std::uint64_t every_users,
                    std::function<void()> on_checkpoint)
      : downstream_(downstream),
        every_users_(every_users == 0 ? 1 : every_users),
        on_checkpoint_(std::move(on_checkpoint)) {}

  void set_restore_hook(std::function<void(const trace::StudyMeta&)> hook) {
    restore_hook_ = std::move(hook);
  }

  void on_study_begin(const trace::StudyMeta& meta) override {
    downstream_->on_study_begin(meta);
    if (restore_hook_) restore_hook_(meta);
  }
  void on_user_begin(trace::UserId user) override { downstream_->on_user_begin(user); }
  void on_packet(const trace::PacketRecord& packet) override {
    downstream_->on_packet(packet);
  }
  void on_transition(const trace::StateTransition& transition) override {
    downstream_->on_transition(transition);
  }
  void on_batch(const trace::EventBatch& batch) override { downstream_->on_batch(batch); }
  void on_user_end(trace::UserId user) override {
    downstream_->on_user_end(user);
    completed_.push_back(user);
    if (++since_checkpoint_ >= every_users_ && on_checkpoint_) {
      since_checkpoint_ = 0;
      on_checkpoint_();
    }
  }
  void on_study_end() override { downstream_->on_study_end(); }

  /// All users completed this run, in stream order. Snapshot callbacks read
  /// this to record progress; callers seed it with a resumed checkpoint's
  /// completed list so follow-up snapshots stay cumulative.
  [[nodiscard]] const std::vector<trace::UserId>& completed_users() const { return completed_; }
  void seed_completed(std::vector<trace::UserId> users) { completed_ = std::move(users); }

 private:
  trace::TraceSink* downstream_;
  std::uint64_t every_users_;
  std::function<void()> on_checkpoint_;
  std::function<void(const trace::StudyMeta&)> restore_hook_;
  std::vector<trace::UserId> completed_;
  std::uint64_t since_checkpoint_ = 0;
};

}  // namespace wildenergy::ckpt
