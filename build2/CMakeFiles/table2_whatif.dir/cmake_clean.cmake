file(REMOVE_RECURSE
  "CMakeFiles/table2_whatif.dir/bench/table2_whatif.cpp.o"
  "CMakeFiles/table2_whatif.dir/bench/table2_whatif.cpp.o.d"
  "bench/table2_whatif"
  "bench/table2_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
