// AccountCursor: the one detail-row read path over a fold-and-release run
// (DESIGN.md §15).
//
// Downstream consumers (what-if replays, per-user figures, diversity counts)
// used to iterate EnergyLedger::accounts() — which requires every (user, app)
// slab resident. Under fold mode those slabs are spilled to WEAC account
// files and released, so consumers iterate an AccountCursor instead: it
// yields every account with traffic, user-major and app-ascending, replaying
// the spilled row groups first (they are the stream-order prefix) and the
// resident remainder after. For an all-resident ledger the cursor degrades
// to a thin wrapper over accounts() — the yielded sequence is byte-identical
// either way, which is what keeps figures and reports bit-identical across
// the two lifecycles.
//
// Usage:
//   AccountCursor cursor{ledger};
//   while (const AppUserAccount* acc = cursor.next()) { ... }
//   if (!cursor.status().ok()) { /* corrupt account file */ }
//
// next() returns nullptr at end OR on a decode error — always check
// status() after the loop. Spill-backed rows decode into cursor-owned
// scratch, invalidated by the following next() call.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "energy/account_file.h"
#include "energy/ledger.h"
#include "util/status.h"

namespace wildenergy::energy {

/// Section name the ledger spills its per-user detail accounts under.
inline constexpr const char* kLedgerSection = "ledger";

/// Decode one "ledger" row-group section back into accounts (the exact
/// mirror of EnergyLedger's fold-time encoding). Appends to `out`.
[[nodiscard]] util::Status decode_ledger_section(trace::UserId user, std::string_view payload,
                                                 std::vector<AppUserAccount>& out);

class AccountCursor {
 public:
  /// Binds to `ledger`'s current backend: when the ledger folded through an
  /// AccountSpill, the spill directory is mapped up front (open errors
  /// surface through status() and the cursor yields nothing).
  explicit AccountCursor(const EnergyLedger& ledger);

  /// The next account with traffic, or nullptr when exhausted (or when a
  /// spilled row failed to decode — check status()). Spill-backed returns
  /// point into cursor scratch and are invalidated by the next call.
  [[nodiscard]] const AppUserAccount* next();

  /// OK unless a spilled account file failed to open or decode.
  [[nodiscard]] const util::Status& status() const { return status_; }

 private:
  /// Refill pending_ with the next spilled row group; false when spilled
  /// rows are exhausted (or an error latched).
  [[nodiscard]] bool refill_from_spill();

  const EnergyLedger& ledger_;
  util::Status status_;

  AccountReader reader_;
  bool spill_done_ = false;
  std::size_t file_idx_ = 0;
  std::size_t row_idx_ = 0;
  std::vector<AppUserAccount> pending_;  ///< decoded current row group
  std::size_t pending_pos_ = 0;

  bool resident_started_ = false;
  EnergyLedger::AccountIterator resident_it_;
  EnergyLedger::AccountIterator resident_end_;
};

/// User-grouped iteration for consumers that need one user's accounts
/// together (per-user energy figures, app-diversity counts, what-if
/// percentiles): cb(user, accounts) fires once per user with traffic, in
/// the cursor order (spilled prefix, then resident), with that user's
/// accounts app-ascending. The span is only valid inside the callback.
[[nodiscard]] util::Status for_each_user_accounts(
    const EnergyLedger& ledger,
    const std::function<void(trace::UserId, std::span<const AppUserAccount>)>& cb);

}  // namespace wildenergy::energy
