#include "obs/run_stats.h"

#include <ostream>

#include "util/table.h"

namespace wildenergy::obs {

void RunStats::print(std::ostream& os) const {
  os << "-- run stats --\n"
     << "wall time:     " << fmt(wall_ms, 1) << " ms";
  if (num_threads > 1) os << " (" << num_threads << " worker threads)";
  os << "\n"
     << "throughput:    " << fmt_sig(packets_per_sec()) << " packets/s, "
     << fmt_bytes(bytes_per_sec()) << "/s\n"
     << "stream:        " << users << " users, " << packets << " packets, " << fmt_bytes(static_cast<double>(bytes))
     << ", " << transitions << " transitions\n"
     << "off-interface: " << off_interface_packets << " packets ("
     << fmt_bytes(static_cast<double>(off_interface_bytes)) << ") dropped before attribution\n"
     << "energy:        " << fmt(joules / 1e3, 1) << " kJ attributed\n";

  os << "attribution:   " << tail_attributions << " tail attributions";
  if (proportional_splits > 0) os << " (" << proportional_splits << " proportional splits)";
  os << ", " << promotion_segments << " promotions, " << transfer_segments << " transfers, "
     << tail_segments << " tail segments (" << drx_segments << " DRX), " << idle_segments
     << " idle\n";
  os << "radio:         " << radio_bursts << " bursts (" << radio_bursts_queued
     << " queued behind airtime), " << radio_promotions << " promotions, " << radio_repromotions
     << " re-promotions\n";

  if (shard_retries > 0 || !failed_users.empty()) {
    os << "resilience:    " << shard_retries << " shard retr" << (shard_retries == 1 ? "y" : "ies")
       << ", " << failed_users.size() << " user(s) skipped";
    if (!failed_users.empty()) {
      os << " (";
      for (std::size_t i = 0; i < failed_users.size(); ++i) {
        if (i > 0) os << ", ";
        os << failed_users[i];
      }
      os << ")";
    }
    os << "\n";
  }

  if (!shards.empty()) {
    os << "\n-- per-shard (user) breakdown --\n";
    TextTable shard_table({"user", "worker", "wall (ms)", "packets", "joules", "attempts"});
    for (const auto& s : shards) {
      shard_table.add_row({std::to_string(s.user), std::to_string(s.worker), fmt(s.wall_ms, 1),
                           std::to_string(s.packets), fmt(s.joules, 1),
                           s.skipped ? "skipped: " + s.status.message()
                                     : std::to_string(s.attempts)});
    }
    shard_table.print(os);
    if (serial_fallback_sinks > 0) {
      os << "(" << serial_fallback_sinks
         << " non-shardable sink(s) fed by an extra serial replay pass)\n";
    }
  }

  if (!timed || stages.empty()) {
    if (num_threads > 1) {
      os << "(per-stage self times are serial-only; sharded runs report per-shard walls)\n";
    } else {
      os << "(per-stage breakdown not collected; enable stage stats / --stats)\n";
    }
    return;
  }

  double accounted = 0.0;
  for (const auto& s : stages) accounted += s.self_ms;

  os << "\n-- per-stage self time --\n";
  TextTable table({"stage", "self (ms)", "% wall", "packets", "transitions", "Mpkt/s"});
  for (const auto& s : stages) {
    table.add_row({s.name, fmt(s.self_ms, 1),
                   fmt(wall_ms > 0.0 ? 100.0 * s.self_ms / wall_ms : 0.0, 1),
                   std::to_string(s.packets), std::to_string(s.transitions),
                   fmt(s.packets_per_sec() / 1e6, 2)});
  }
  table.print(os);
  os << "(self times sum to " << fmt(accounted, 1) << " ms of " << fmt(wall_ms, 1)
     << " ms wall)\n";
}

}  // namespace wildenergy::obs
