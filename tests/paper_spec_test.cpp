// Spec tests: the named app profiles must encode the behaviours Table 1 and
// §4 of the paper report. These pin the catalog against accidental drift —
// if a profile edit breaks a paper-documented period or evolution, the
// failure names the paper row.
#include <gtest/gtest.h>

#include "appmodel/catalog.h"

namespace wildenergy::appmodel {
namespace {

class PaperSpec : public ::testing::Test {
 protected:
  const AppProfile& app(const char* name) {
    const trace::AppId id = catalog_.find(name);
    EXPECT_NE(id, trace::kNoApp) << name;
    return catalog_[id];
  }
  AppCatalog catalog_ = AppCatalog::paper_catalog();
};

TEST_F(PaperSpec, WeiboFrequentNearlyEmptyRequests) {
  const auto& weibo = app("Weibo");
  ASSERT_EQ(weibo.periodic.size(), 1u);
  const auto& poll = weibo.periodic[0];
  // "5-10 min" updates of "frequent, nearly-empty requests".
  EXPECT_GE(poll.period.at(0).minutes(), 4.0);
  EXPECT_LE(poll.period.at(0).minutes(), 10.0);
  EXPECT_LT(poll.bytes_down.at(0), 10'000u);
}

TEST_F(PaperSpec, TwitterHourlyBatchedSync) {
  const auto& sync = app("Twitter").periodic.at(0);
  EXPECT_NEAR(sync.period.at(0).hours(), 1.0, 0.2);
  EXPECT_GT(sync.bytes_down.at(0), 500'000u);  // batched, not nearly-empty
}

TEST_F(PaperSpec, FacebookEvolvesFiveMinutesToOneHour) {
  const auto& sync = app("Facebook").periodic.at(0);
  EXPECT_TRUE(sync.period.evolves());
  EXPECT_NEAR(sync.period.at(0).minutes(), 5.0, 1.0);
  EXPECT_NEAR(sync.period.at(622).hours(), 1.0, 0.2);
}

TEST_F(PaperSpec, PandoraMovesAwayFromContinuousStreaming) {
  const auto& media = app("Pandora").media;
  ASSERT_TRUE(media.has_value());
  EXPECT_TRUE(media->chunk_period.evolves());
  EXPECT_NEAR(media->chunk_period.at(0).minutes(), 1.0, 0.3);  // "every 1 min in 2012"
  EXPECT_GE(media->chunk_period.at(622).hours(), 1.5);         // "=> 2 h"
}

TEST_F(PaperSpec, SpotifyBatchesGrow) {
  const auto& media = app("Spotify").media;
  ASSERT_TRUE(media.has_value());
  EXPECT_NEAR(media->chunk_period.at(0).minutes(), 5.0, 1.0);
  EXPECT_NEAR(media->chunk_period.at(622).minutes(), 40.0, 8.0);
}

TEST_F(PaperSpec, PodcastStrategiesDiffer) {
  const auto& pocket = app("Pocketcasts").media;
  const auto& addict = app("Podcastaddict").media;
  ASSERT_TRUE(pocket.has_value());
  ASSERT_TRUE(addict.has_value());
  EXPECT_TRUE(pocket->whole_file);    // "downloads an entire podcast in one chunk"
  EXPECT_FALSE(addict->whole_file);   // "downloads smaller chunks as needed"
  EXPECT_LT(addict->chunk_period.at(0).minutes(), 15.0);
}

TEST_F(PaperSpec, GoWeatherSwitchedPushApproaches) {
  const auto& refresh = app("Go Weather").periodic.at(0);
  EXPECT_TRUE(refresh.period.evolves());
  EXPECT_NEAR(refresh.period.at(0).minutes(), 5.0, 1.0);
  EXPECT_NEAR(refresh.period.at(622).minutes(), 40.0, 8.0);
}

TEST_F(PaperSpec, WidgetsDifferByOrderOfMagnitudeInFrequency) {
  const auto& go = app("Go Weather widget").periodic.at(0);
  const auto& accu = app("Accuweather widget").periodic.at(0);
  EXPECT_NEAR(go.period.at(0).minutes(), 5.0, 1.0);   // every 5 min
  EXPECT_NEAR(accu.period.at(0).hours(), 3.0, 0.5);   // ~3 h
  EXPECT_GT(accu.period.at(0).us / go.period.at(0).us, 20);
}

TEST_F(PaperSpec, MapsLocationServiceSlowsDown) {
  const auto& loc = app("Maps").periodic.at(0);
  EXPECT_TRUE(loc.period.evolves());
  EXPECT_GE(loc.period.at(0).minutes(), 20.0);
  EXPECT_LE(loc.period.at(0).minutes(), 30.0);
  EXPECT_GE(loc.period.at(622).hours(), 2.0);  // "a few hours near the end"
}

TEST_F(PaperSpec, GMailLengthensItsInterval) {
  const auto& sync = app("GMail").periodic.at(0);
  EXPECT_TRUE(sync.period.evolves());
  EXPECT_NEAR(sync.period.at(0).minutes(), 30.0, 5.0);  // "30 min in 2012"
  EXPECT_GT(sync.period.at(622).us, sync.period.at(0).us);
}

TEST_F(PaperSpec, UrbanairshipPollsRarelyNotify) {
  const auto& poll = app("Urbanairship").periodic.at(0);
  EXPECT_LT(poll.bytes_down.at(0), 5'000u);  // "nearly empty HTTP requests"
  EXPECT_LT(poll.user_visible_probability, 0.05);  // "one notification in hours"
  EXPECT_EQ(app("Urbanairship").foreground.sessions_per_day, 0.0);  // a library
}

TEST_F(PaperSpec, OnlyChromeLeaksAmongBrowsers) {
  EXPECT_TRUE(app("Chrome").leak.has_value());
  EXPECT_FALSE(app("Firefox").leak.has_value());
  EXPECT_FALSE(app("Browser").leak.has_value());
  // Chrome's leak includes the egregious ~2 s transit page.
  EXPECT_GT(app("Chrome").leak->egregious_probability, 0.0);
  EXPECT_NEAR(app("Chrome").leak->egregious_poll_period.seconds(), 2.0, 0.5);
  // And a heavy tail capable of exceeding a day (Fig. 5).
  EXPECT_GT(app("Chrome").leak->pareto_tail_probability, 0.0);
}

TEST_F(PaperSpec, MediaServerIsDelegatedService) {
  const auto& media = app("Media Server").media;
  ASSERT_TRUE(media.has_value());
  EXPECT_TRUE(media->delegated_service);  // never foregrounded itself (§3)
  EXPECT_EQ(app("Media Server").foreground.sessions_per_day, 0.0);
}

TEST_F(PaperSpec, SpikeAppsResetOnBackground) {
  // The Fig. 6 5/10-minute spikes need timers re-armed on the bg transition.
  EXPECT_EQ(app("NewsTicker").periodic.at(0).phase, PeriodPhase::kResetOnBackground);
  EXPECT_EQ(app("SportsCenter").periodic.at(0).phase, PeriodPhase::kResetOnBackground);
  EXPECT_NEAR(app("NewsTicker").periodic.at(0).period.at(0).minutes(), 5.0, 0.5);
  EXPECT_NEAR(app("SportsCenter").periodic.at(0).period.at(0).minutes(), 10.0, 0.8);
}

TEST_F(PaperSpec, PlusInstalledByDefaultRarelyUsed) {
  const auto& plus = app("Plus");
  EXPECT_GE(plus.install_probability, 0.8);           // "installed by default"
  EXPECT_LE(plus.foreground.sessions_per_day, 0.3);   // "rarely actively used"
}

}  // namespace
}  // namespace wildenergy::appmodel
