// Batched event path (trace/batch.h and every batch-aware sink).
//
// The contract under test is absolute: for ANY batch size — including the
// degenerate 1 and the oversized 4096 — every output is bit-identical to the
// per-record stream, for every sink in the chain, for every thread count,
// and through the fault-tolerant retry path. EXPECT_EQ on doubles
// throughout; NEAR would hide a real divergence.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/case_studies.h"
#include "analysis/figures.h"
#include "analysis/longitudinal.h"
#include "analysis/persistence.h"
#include "analysis/time_since_fg.h"
#include "analysis/waste.h"
#include "core/pipeline.h"
#include "energy/attributor.h"
#include "energy/ledger.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "radio/burst_machine.h"
#include "sim/generator.h"
#include "sim/study_config.h"
#include "trace/batch.h"
#include "trace/binary_io.h"
#include "trace/csv_io.h"
#include "trace/interface_filter.h"
#include "trace/sink.h"
#include "trace/validating_sink.h"

namespace wildenergy {
namespace {

using trace::EventBatch;
using trace::EventBatcher;
using trace::EventKind;
using trace::PacketRecord;
using trace::ReadOptions;
using trace::ReadPolicy;
using trace::StateTransition;

PacketRecord packet_at(std::int64_t us, trace::UserId user = 0) {
  PacketRecord p;
  p.time.us = us;
  p.user = user;
  p.app = 1;
  p.bytes = 100;
  return p;
}

StateTransition transition_at(std::int64_t us, trace::UserId user = 0) {
  StateTransition t;
  t.time.us = us;
  t.user = user;
  t.app = 1;
  t.from = trace::ProcessState::kBackground;
  t.to = trace::ProcessState::kForeground;
  return t;
}

trace::StudyMeta two_user_meta() {
  trace::StudyMeta meta;
  meta.num_users = 2;
  meta.num_apps = 4;
  meta.study_begin.us = 0;
  meta.study_end.us = 10'000'000;
  return meta;
}

/// "P<time>" etc. — built char-by-char; the obvious `"P" + to_string(...)`
/// trips a gcc-12 -Wrestrict false positive under -Werror.
std::string tagged(char tag, std::int64_t value) {
  std::string s(1, tag);
  s += std::to_string(value);
  return s;
}

/// Logs the exact callback sequence, per record — never overrides on_batch,
/// so it also exercises the default replay path.
class SequenceProbe : public trace::TraceSink {
 public:
  void on_study_begin(const trace::StudyMeta&) override { events.push_back("SB"); }
  void on_user_begin(trace::UserId user) override { events.push_back(tagged('U', user)); }
  void on_packet(const PacketRecord& p) override { events.push_back(tagged('P', p.time.us)); }
  void on_transition(const StateTransition& t) override {
    events.push_back(tagged('T', t.time.us));
  }
  void on_user_end(trace::UserId user) override { events.push_back(tagged('V', user)); }
  void on_study_end() override { events.push_back("SE"); }

  std::vector<std::string> events;
};

/// SequenceProbe that additionally records each batch boundary, to assert
/// how a producer sliced the stream.
class BatchProbe final : public SequenceProbe {
 public:
  void on_batch(const EventBatch& batch) override {
    batch_sizes.push_back(batch.size());
    batch_users.push_back(batch.user);
    replay(batch, *this);
  }

  std::vector<std::size_t> batch_sizes;
  std::vector<trace::UserId> batch_users;
};

// ------------------------------------------------------------- EventBatch

TEST(EventBatch, PreservesInterleavingAndClearKeepsCapacity) {
  EventBatch batch;
  batch.user = 3;
  batch.add(packet_at(10, 3));
  batch.add(transition_at(10, 3));  // same timestamp: order must be kept
  batch.add(packet_at(20, 3));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_FALSE(batch.empty());
  ASSERT_EQ(batch.order.size(), 3u);
  EXPECT_EQ(batch.order[0], EventKind::kPacket);
  EXPECT_EQ(batch.order[1], EventKind::kTransition);
  EXPECT_EQ(batch.order[2], EventKind::kPacket);

  SequenceProbe probe;
  trace::replay(batch, probe);
  const std::vector<std::string> want{"P10", "T10", "P20"};
  EXPECT_EQ(probe.events, want);

  const auto packet_cap = batch.packets.capacity();
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.packets.capacity(), packet_cap);  // reuse-hot contract
}

TEST(DefaultOnBatch, ReplaysThePerRecordCallbacks) {
  EventBatch batch;
  batch.add(packet_at(5));
  batch.add(transition_at(7));
  batch.add(packet_at(9));
  SequenceProbe probe;
  static_cast<trace::TraceSink&>(probe).on_batch(batch);  // base implementation
  const std::vector<std::string> want{"P5", "T7", "P9"};
  EXPECT_EQ(probe.events, want);
}

// ----------------------------------------------------------- EventBatcher

TEST(EventBatcher, SlicesIntoFullBatchesAndFlushesBeforeEveryBracket) {
  BatchProbe probe;
  EventBatcher batcher{&probe, /*batch_size=*/4};
  batcher.on_study_begin(two_user_meta());
  batcher.on_user_begin(0);
  for (int i = 0; i < 9; ++i) batcher.on_packet(packet_at(10 * i, 0));
  batcher.on_user_end(0);  // flushes the short tail batch of 1
  batcher.on_user_begin(1);
  batcher.on_packet(packet_at(5, 1));
  batcher.on_transition(transition_at(6, 1));
  batcher.on_user_end(1);
  batcher.on_study_end();

  const std::vector<std::size_t> want_sizes{4, 4, 1, 2};
  EXPECT_EQ(probe.batch_sizes, want_sizes);
  const std::vector<trace::UserId> want_users{0, 0, 0, 1};
  EXPECT_EQ(probe.batch_users, want_users);

  // The replayed stream is the exact per-record stream, brackets in place.
  const std::vector<std::string> want_events{"SB", "U0",  "P0",  "P10", "P20", "P30",
                                             "P40", "P50", "P60", "P70", "P80", "V0",
                                             "U1",  "P5",  "T6",  "V1",  "SE"};
  EXPECT_EQ(probe.events, want_events);
}

TEST(EventBatcher, PassesAlreadyBatchedInputThroughUnsliced) {
  BatchProbe probe;
  EventBatcher batcher{&probe, /*batch_size=*/2};
  EventBatch big;
  big.user = 0;
  for (int i = 0; i < 7; ++i) big.add(packet_at(i, 0));
  batcher.on_packet(packet_at(100, 0));  // buffered
  batcher.on_batch(big);                 // flushes the buffer, then passes through
  const std::vector<std::size_t> want_sizes{1, 7};
  EXPECT_EQ(probe.batch_sizes, want_sizes);
}

TEST(EventBatcher, ZeroBatchSizeIsClampedToOne) {
  BatchProbe probe;
  EventBatcher batcher{&probe, /*batch_size=*/0};
  batcher.on_user_begin(0);
  batcher.on_packet(packet_at(1, 0));
  batcher.on_packet(packet_at(2, 0));
  batcher.on_user_end(0);
  const std::vector<std::size_t> want_sizes{1, 1};
  EXPECT_EQ(probe.batch_sizes, want_sizes);
}

// --------------------------------------------- multicast + collector sinks

TEST(TraceMulticast, ForwardsBatchesToEveryChildInOrder) {
  BatchProbe a;
  SequenceProbe b;  // per-record-only child: default replay inside multicast
  trace::TraceMulticast fan;
  fan.add(&a);
  fan.add(&b);
  EventBatch batch;
  batch.add(packet_at(1));
  batch.add(transition_at(2));
  fan.on_batch(batch);
  const std::vector<std::size_t> want_sizes{2};
  EXPECT_EQ(a.batch_sizes, want_sizes);
  const std::vector<std::string> want_events{"P1", "T2"};
  EXPECT_EQ(a.events, want_events);
  EXPECT_EQ(b.events, want_events);
}

TEST(TraceCollector, BatchedAndPerRecordIngestCollectTheSameStream) {
  const sim::StudyGenerator generator{sim::small_study(/*seed=*/9)};
  trace::TraceCollector per_record;
  generator.run(per_record);
  trace::TraceCollector batched;
  generator.run(batched, /*batch_size=*/33);

  ASSERT_EQ(per_record.packets().size(), batched.packets().size());
  ASSERT_EQ(per_record.transitions().size(), batched.transitions().size());
  for (std::size_t i = 0; i < per_record.packets().size(); ++i) {
    EXPECT_EQ(per_record.packets()[i].time.us, batched.packets()[i].time.us);
    EXPECT_EQ(per_record.packets()[i].user, batched.packets()[i].user);
    EXPECT_EQ(per_record.packets()[i].app, batched.packets()[i].app);
    EXPECT_EQ(per_record.packets()[i].bytes, batched.packets()[i].bytes);
  }
  for (std::size_t i = 0; i < per_record.transitions().size(); ++i) {
    EXPECT_EQ(per_record.transitions()[i].time.us, batched.transitions()[i].time.us);
    EXPECT_EQ(per_record.transitions()[i].app, batched.transitions()[i].app);
  }
}

// --------------------------------------------------------- interface filter

TEST(InterfaceFilter, BatchPathMatchesPerRecordIncludingDropCounters) {
  // A stream with both interfaces so the filter's rebuild path runs.
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 20; ++i) {
    PacketRecord p = packet_at(100 * i, 0);
    p.bytes = 50 + i;
    p.interface = (i % 3 == 0) ? trace::Interface::kWifi : trace::Interface::kCellular;
    packets.push_back(p);
  }

  trace::TraceCollector per_record_out;
  trace::InterfaceFilter per_record{&per_record_out, trace::Interface::kCellular};
  per_record.on_study_begin(two_user_meta());
  per_record.on_user_begin(0);
  for (const auto& p : packets) per_record.on_packet(p);
  per_record.on_transition(transition_at(1'999, 0));
  per_record.on_user_end(0);
  per_record.on_study_end();

  trace::TraceCollector batched_out;
  trace::InterfaceFilter batched{&batched_out, trace::Interface::kCellular};
  EventBatcher batcher{&batched, /*batch_size=*/6};
  batcher.on_study_begin(two_user_meta());
  batcher.on_user_begin(0);
  for (const auto& p : packets) batcher.on_packet(p);
  batcher.on_transition(transition_at(1'999, 0));
  batcher.on_user_end(0);
  batcher.on_study_end();

  EXPECT_EQ(per_record.dropped_packets(), batched.dropped_packets());
  EXPECT_EQ(per_record.dropped_bytes(), batched.dropped_bytes());
  ASSERT_EQ(per_record_out.packets().size(), batched_out.packets().size());
  for (std::size_t i = 0; i < per_record_out.packets().size(); ++i) {
    EXPECT_EQ(per_record_out.packets()[i].time.us, batched_out.packets()[i].time.us);
    EXPECT_EQ(per_record_out.packets()[i].bytes, batched_out.packets()[i].bytes);
  }
  ASSERT_EQ(per_record_out.transitions().size(), batched_out.transitions().size());
}

TEST(InterfaceFilter, AllKeptBatchIsForwardedWithoutRebuilding) {
  BatchProbe probe;
  trace::InterfaceFilter filter{&probe, trace::Interface::kCellular};
  EventBatch batch;
  for (int i = 0; i < 5; ++i) batch.add(packet_at(i, 0));
  filter.on_batch(batch);
  const std::vector<std::size_t> want_sizes{5};
  EXPECT_EQ(probe.batch_sizes, want_sizes);
  EXPECT_EQ(filter.dropped_packets(), 0u);
}

// --------------------------------------------------------- validating sink

/// Drives the same corrupted (but bracket-respecting) stream through a
/// ValidatingSink, per record or via an EventBatcher, and summarizes what
/// came out the other side.
struct ValidationOutcome {
  bool ok = false;
  std::uint64_t dropped = 0;
  std::uint64_t repaired = 0;
  std::size_t quarantined = 0;
  std::vector<std::int64_t> forwarded_times;
};

ValidationOutcome validate_corrupted(ReadPolicy policy, std::size_t batch_size) {
  obs::MetricsRegistry registry;  // keep test metrics off the global registry
  const obs::ScopedMetricsRegistry scoped{&registry};
  ReadOptions options;
  options.policy = policy;
  trace::TraceCollector collector;
  trace::ValidatingSink validator{&collector, options};
  EventBatcher batcher{&validator, batch_size == 0 ? 1 : batch_size};
  trace::TraceSink& in = batch_size == 0 ? static_cast<trace::TraceSink&>(validator) : batcher;

  in.on_study_begin(two_user_meta());
  in.on_user_begin(0);
  in.on_packet(packet_at(500, 0));
  in.on_packet(packet_at(100, 0));  // backwards timestamp
  in.on_packet(packet_at(600, 1));  // wrong user inside user 0's bracket
  PacketRecord bad_enum = packet_at(700, 0);
  bad_enum.state = static_cast<trace::ProcessState>(97);
  in.on_packet(bad_enum);
  in.on_transition(transition_at(800, 0));
  in.on_packet(packet_at(20'000'000, 0));  // outside the declared study window
  in.on_packet(packet_at(900, 0));
  in.on_user_end(0);
  in.on_user_begin(1);
  in.on_packet(packet_at(50, 1));
  in.on_user_end(1);
  in.on_study_end();

  ValidationOutcome out;
  out.ok = validator.status().ok();
  out.dropped = validator.records_dropped();
  out.repaired = validator.records_repaired();
  out.quarantined = validator.quarantine().size();
  for (const auto& p : collector.packets()) out.forwarded_times.push_back(p.time.us);
  for (const auto& t : collector.transitions()) out.forwarded_times.push_back(-t.time.us);
  return out;
}

TEST(ValidatingSink, BatchedValidationMatchesPerRecordUnderEveryPolicy) {
  for (const ReadPolicy policy :
       {ReadPolicy::kStrict, ReadPolicy::kSkipAndCount, ReadPolicy::kBestEffort}) {
    const ValidationOutcome per_record = validate_corrupted(policy, 0);
    for (const std::size_t batch_size : {1u, 3u, 64u}) {
      SCOPED_TRACE(std::string("policy=") + trace::to_string(policy) +
                   " batch_size=" + std::to_string(batch_size));
      const ValidationOutcome batched = validate_corrupted(policy, batch_size);
      EXPECT_EQ(per_record.ok, batched.ok);
      EXPECT_EQ(per_record.dropped, batched.dropped);
      EXPECT_EQ(per_record.repaired, batched.repaired);
      EXPECT_EQ(per_record.quarantined, batched.quarantined);
      EXPECT_EQ(per_record.forwarded_times, batched.forwarded_times);
    }
  }
}

TEST(ValidatingSink, ForwardsSurvivorsOfABatchAsOneBatch) {
  ReadOptions options;
  options.policy = ReadPolicy::kSkipAndCount;
  BatchProbe probe;
  trace::ValidatingSink validator{&probe, options};
  validator.on_study_begin(two_user_meta());
  validator.on_user_begin(0);
  EventBatch batch;
  batch.user = 0;
  batch.add(packet_at(100, 0));
  batch.add(packet_at(50, 0));   // backwards: dropped
  batch.add(packet_at(200, 0));
  validator.on_batch(batch);
  validator.on_user_end(0);
  validator.on_study_end();
  const std::vector<std::size_t> want_sizes{2};  // survivors travel as a batch
  EXPECT_EQ(probe.batch_sizes, want_sizes);
  EXPECT_EQ(validator.records_dropped(), 1u);
}

// ------------------------------------------------------- energy attribution

TEST(EnergyAttributor, BatchPathIsBitIdenticalForBothTailPolicies) {
  sim::StudyConfig config = sim::small_study(/*seed=*/13);
  config.num_users = 2;
  config.num_days = 5;
  const sim::StudyGenerator generator{config};

  for (const energy::TailPolicy policy :
       {energy::TailPolicy::kLastPacket, energy::TailPolicy::kProportional}) {
    trace::TraceCollector per_record_out;
    energy::EnergyAttributor per_record{radio::make_lte_model, &per_record_out, policy};
    generator.run(per_record);

    for (const std::size_t batch_size : {1u, 7u, 256u}) {
      SCOPED_TRACE(std::string("policy=") +
                   (policy == energy::TailPolicy::kLastPacket ? "last-packet" : "proportional") +
                   " batch_size=" + std::to_string(batch_size));
      trace::TraceCollector batched_out;
      energy::EnergyAttributor batched{radio::make_lte_model, &batched_out, policy};
      generator.run(batched, batch_size);

      EXPECT_EQ(per_record.device_joules(), batched.device_joules());
      EXPECT_EQ(per_record.attributed_joules(), batched.attributed_joules());
      EXPECT_EQ(per_record.baseline_joules(), batched.baseline_joules());
      EXPECT_EQ(per_record.tail_joules(), batched.tail_joules());
      EXPECT_EQ(per_record.promotion_joules(), batched.promotion_joules());
      EXPECT_EQ(per_record.transfer_joules(), batched.transfer_joules());
      EXPECT_EQ(per_record.counters().packets, batched.counters().packets);
      EXPECT_EQ(per_record.counters().transitions, batched.counters().transitions);
      EXPECT_EQ(per_record.counters().tail_attributions, batched.counters().tail_attributions);
      EXPECT_EQ(per_record.counters().proportional_splits,
                batched.counters().proportional_splits);
      EXPECT_EQ(per_record.counters().tail_segments, batched.counters().tail_segments);
      EXPECT_EQ(per_record.counters().idle_segments, batched.counters().idle_segments);

      // The annotated stream downstream is identical packet for packet.
      ASSERT_EQ(per_record_out.packets().size(), batched_out.packets().size());
      for (std::size_t i = 0; i < per_record_out.packets().size(); ++i) {
        EXPECT_EQ(per_record_out.packets()[i].time.us, batched_out.packets()[i].time.us);
        EXPECT_EQ(per_record_out.packets()[i].joules, batched_out.packets()[i].joules);
      }
      ASSERT_EQ(per_record_out.transitions().size(), batched_out.transitions().size());
    }
  }
}

// -------------------------------------------------- full-pipeline property

/// All paper analyses attached at once, so the batch-size property covers
/// every sink kind including the serial-fallback path (longitudinal).
struct AnalysisSet {
  std::vector<trace::AppId> tracked{0, 1, 2, 3, 4};
  analysis::PersistenceAnalysis persistence;
  analysis::TimeSinceForegroundAnalysis time_since_fg;
  analysis::WastedUpdateAnalysis waste{tracked};
  analysis::CaseStudyAnalysis cases{tracked};
  analysis::LongitudinalAnalysis longitudinal{tracked};

  void attach(core::StudyPipeline& pipeline) {
    pipeline.add_analysis("persistence", &persistence);
    pipeline.add_analysis("time_since_fg", &time_since_fg);
    pipeline.add_analysis("waste", &waste);
    pipeline.add_analysis("cases", &cases);
    pipeline.add_analysis("longitudinal", &longitudinal);
  }
};

void expect_identical_ledgers(const energy::EnergyLedger& a, const energy::EnergyLedger& b) {
  EXPECT_EQ(a.total_joules(), b.total_joules());  // exact, not NEAR
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.total_packets(), b.total_packets());
  const auto a_states = a.state_totals();
  const auto b_states = b.state_totals();
  for (std::size_t s = 0; s < a_states.size(); ++s) EXPECT_EQ(a_states[s], b_states[s]);
  ASSERT_EQ(a.accounts().size(), b.accounts().size());
  auto bit = b.accounts().begin();
  for (const auto& acc : a.accounts()) {
    ASSERT_EQ(acc.user, bit->user);  // same deterministic user-major order
    ASSERT_EQ(acc.app, bit->app);
    const auto& other = *bit;
    EXPECT_EQ(acc.joules, other.joules);
    EXPECT_EQ(acc.bytes, other.bytes);
    EXPECT_EQ(acc.packets, other.packets);
    for (std::size_t s = 0; s < acc.state_joules.size(); ++s) {
      EXPECT_EQ(acc.state_joules[s], other.state_joules[s]);
    }
    ASSERT_EQ(acc.days.size(), other.days.size());
    for (std::size_t d = 0; d < acc.days.size(); ++d) {
      EXPECT_EQ(acc.days[d].fg_joules, other.days[d].fg_joules);
      EXPECT_EQ(acc.days[d].bg_joules, other.days[d].bg_joules);
      EXPECT_EQ(acc.days[d].fg_bytes, other.days[d].fg_bytes);
      EXPECT_EQ(acc.days[d].bg_bytes, other.days[d].bg_bytes);
    }
    ++bit;
  }
}

void expect_identical_figures(const energy::EnergyLedger& a, const energy::EnergyLedger& b) {
  const auto pop_a = analysis::top10_popularity(a);
  const auto pop_b = analysis::top10_popularity(b);
  ASSERT_EQ(pop_a.size(), pop_b.size());
  for (std::size_t i = 0; i < pop_a.size(); ++i) {
    EXPECT_EQ(pop_a[i].app, pop_b[i].app);
    EXPECT_EQ(pop_a[i].users_with_app_in_top10, pop_b[i].users_with_app_in_top10);
  }
  for (const bool by_energy : {false, true}) {
    const auto cons_a =
        by_energy ? analysis::top_consumers_by_energy(a) : analysis::top_consumers_by_data(a);
    const auto cons_b =
        by_energy ? analysis::top_consumers_by_energy(b) : analysis::top_consumers_by_data(b);
    ASSERT_EQ(cons_a.size(), cons_b.size());
    for (std::size_t i = 0; i < cons_a.size(); ++i) {
      EXPECT_EQ(cons_a[i].app, cons_b[i].app);
      EXPECT_EQ(cons_a[i].bytes, cons_b[i].bytes);
      EXPECT_EQ(cons_a[i].joules, cons_b[i].joules);
    }
  }
  const auto brk_a = analysis::overall_state_breakdown(a);
  const auto brk_b = analysis::overall_state_breakdown(b);
  EXPECT_EQ(brk_a.total_joules, brk_b.total_joules);
  for (std::size_t s = 0; s < brk_a.fraction.size(); ++s) {
    EXPECT_EQ(brk_a.fraction[s], brk_b.fraction[s]);
  }
}

void expect_identical_analyses(AnalysisSet& a, AnalysisSet& b) {
  for (const trace::AppId app : a.tracked) {
    auto sa = a.persistence.durations(app).sorted_samples();
    auto sb = b.persistence.durations(app).sorted_samples();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
    const auto wa = a.waste.result(app);
    const auto wb = b.waste.result(app);
    EXPECT_EQ(wa.updates, wb.updates);
    EXPECT_EQ(wa.wasted_updates, wb.wasted_updates);
    EXPECT_EQ(wa.joules, wb.joules);
    EXPECT_EQ(wa.wasted_joules, wb.wasted_joules);
    const auto ca = a.cases.result(app);
    const auto cb = b.cases.result(app);
    EXPECT_EQ(ca.joules_total, cb.joules_total);
    EXPECT_EQ(ca.bytes_total, cb.bytes_total);
    EXPECT_EQ(ca.flows, cb.flows);
    EXPECT_EQ(ca.days_active, cb.days_active);
    const auto ea = a.longitudinal.era_comparison(app);
    const auto eb = b.longitudinal.era_comparison(app);
    EXPECT_EQ(ea.early_uj_per_byte, eb.early_uj_per_byte);
    EXPECT_EQ(ea.late_uj_per_byte, eb.late_uj_per_byte);
  }
  const auto ha = a.time_since_fg.bytes_histogram().masses();
  const auto hb = b.time_since_fg.bytes_histogram().masses();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i], hb[i]);
  EXPECT_EQ(a.time_since_fg.fraction_of_apps_frontloaded(),
            b.time_since_fg.fraction_of_apps_frontloaded());
  ASSERT_EQ(a.longitudinal.overall().weeks(), b.longitudinal.overall().weeks());
  for (std::size_t w = 0; w < a.longitudinal.overall().weeks(); ++w) {
    EXPECT_EQ(a.longitudinal.overall().fg_joules[w], b.longitudinal.overall().fg_joules[w]);
    EXPECT_EQ(a.longitudinal.overall().bg_joules[w], b.longitudinal.overall().bg_joules[w]);
  }
}

sim::StudyConfig property_config() {
  sim::StudyConfig config = sim::small_study(/*seed=*/21);
  config.num_users = 4;
  config.num_days = 15;
  return config;
}

TEST(BatchProperty, EveryBatchSizeAndThreadCountIsBitIdenticalToPerRecord) {
  // Baseline: the classic per-record serial pipeline (batch_size = 0).
  core::PipelineOptions baseline_options;
  baseline_options.batch_size = 0;
  sim::StudyGenerator baseline_gen{property_config()};
  core::StudyPipeline baseline{&baseline_gen, baseline_options};
  AnalysisSet baseline_set;
  baseline_set.attach(baseline);
  baseline.run();
  ASSERT_GT(baseline.ledger().total_joules(), 0.0);

  for (const std::size_t batch_size : {1u, 7u, 64u, 4096u}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("batch_size=" + std::to_string(batch_size) +
                   " threads=" + std::to_string(threads));
      core::PipelineOptions options;
      options.batch_size = batch_size;
      options.num_threads = threads;
      sim::StudyGenerator generator{property_config()};
      core::StudyPipeline pipeline{&generator, options};
      AnalysisSet set;
      set.attach(pipeline);
      pipeline.run();

      expect_identical_ledgers(baseline.ledger(), pipeline.ledger());
      expect_identical_figures(baseline.ledger(), pipeline.ledger());
      expect_identical_analyses(baseline_set, set);
      EXPECT_EQ(baseline.attributor().device_joules(), pipeline.attributor().device_joules());
      EXPECT_EQ(baseline.attributor().attributed_joules(),
                pipeline.attributor().attributed_joules());
      EXPECT_EQ(baseline.attributor().tail_joules(), pipeline.attributor().tail_joules());
      EXPECT_EQ(baseline.attributor().counters().packets,
                pipeline.attributor().counters().packets);
      EXPECT_EQ(baseline.attributor().counters().tail_attributions,
                pipeline.attributor().counters().tail_attributions);
      EXPECT_EQ(baseline.off_interface_bytes(), pipeline.off_interface_bytes());
    }
  }
}

TEST(BatchProperty, MidBatchShardFaultRetryStaysBitIdentical) {
  core::PipelineOptions clean_options;
  clean_options.batch_size = 64;
  sim::StudyGenerator clean_gen{property_config()};
  core::StudyPipeline clean{&clean_gen, clean_options};
  clean.run();

  for (const unsigned threads : {1u, 2u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // nth_callback = 5 with batch_size = 64 fires inside the first batch's
    // replay through the FaultySink (which is batch-unaware by design, so
    // per-callback fault positions keep their exact per-record meaning).
    fault::FaultPlan plan;
    plan.add({/*user=*/1, /*nth_callback=*/5, /*fail_attempts=*/1, /*stall_ms=*/0});
    core::PipelineOptions options;
    options.batch_size = 64;
    options.num_threads = threads;
    options.failure_policy = core::FailurePolicy::kRetryThenSkip;
    options.fault_plan = &plan;
    sim::StudyGenerator generator{property_config()};
    core::StudyPipeline pipeline{&generator, options};
    const auto run = pipeline.run();
    ASSERT_TRUE(run.ok());

    const obs::RunStats& stats = run.value();
    EXPECT_EQ(stats.shard_retries, 1u);
    EXPECT_TRUE(stats.failed_users.empty());
    ASSERT_EQ(stats.shards.size(), 4u);
    EXPECT_EQ(stats.shards[1].attempts, 2u);  // failed mid-batch, recovered

    expect_identical_ledgers(clean.ledger(), pipeline.ledger());
    EXPECT_EQ(clean.attributor().device_joules(), pipeline.attributor().device_joules());
  }
}

// ---------------------------------------------------------------- readers

TEST(Readers, BatchedIngestIsBitIdenticalToPerRecord) {
  sim::StudyConfig config = sim::small_study(/*seed=*/7);
  config.num_users = 2;
  config.num_days = 2;
  config.total_apps = 30;
  const sim::StudyGenerator generator{config};

  for (const bool binary : {false, true}) {
    std::ostringstream os;
    if (binary) {
      trace::BinaryTraceWriter writer{os};
      generator.run(writer);
    } else {
      trace::CsvTraceWriter writer{os};
      generator.run(writer);
    }
    const std::string data = os.str();

    const auto ingest = [&](std::size_t batch_size, trace::TraceCollector& out) {
      ReadOptions options;
      options.batch_size = batch_size;
      std::istringstream is{data};
      if (binary) {
        ASSERT_TRUE(trace::read_binary_trace(is, out, options).ok());
      } else {
        ASSERT_TRUE(trace::read_csv_trace(is, out, options).ok());
      }
    };

    SCOPED_TRACE(binary ? "binary" : "csv");
    trace::TraceCollector per_record;
    ingest(0, per_record);
    trace::TraceCollector batched;
    ingest(32, batched);
    ASSERT_GT(per_record.packets().size(), 0u);
    ASSERT_EQ(per_record.packets().size(), batched.packets().size());
    for (std::size_t i = 0; i < per_record.packets().size(); ++i) {
      EXPECT_EQ(per_record.packets()[i].time.us, batched.packets()[i].time.us);
      EXPECT_EQ(per_record.packets()[i].user, batched.packets()[i].user);
      EXPECT_EQ(per_record.packets()[i].bytes, batched.packets()[i].bytes);
      EXPECT_EQ(per_record.packets()[i].joules, batched.packets()[i].joules);
    }
    ASSERT_EQ(per_record.transitions().size(), batched.transitions().size());
  }
}

TEST(Readers, BatchedIngestCountsMalformedRecordsIdentically) {
  // Corrupt one CSV line; batched and per-record ingest must agree on what
  // was dropped and what survived.
  sim::StudyConfig config = sim::small_study(/*seed=*/7);
  config.num_users = 1;
  config.num_days = 1;
  config.total_apps = 30;
  std::ostringstream os;
  trace::CsvTraceWriter writer{os};
  sim::StudyGenerator{config}.run(writer);
  std::string data = os.str();
  const auto first_packet = data.find("\nP,");
  ASSERT_NE(first_packet, std::string::npos);
  data[first_packet + 1] = 'X';  // unknown record tag

  const auto ingest = [&](std::size_t batch_size) {
    ReadOptions options;
    options.policy = ReadPolicy::kSkipAndCount;
    options.batch_size = batch_size;
    std::istringstream is{data};
    energy::EnergyLedger ledger;
    const auto result = trace::read_csv_trace(is, ledger, options);
    EXPECT_TRUE(result.ok());
    return std::make_pair(result.records_dropped, ledger.total_bytes());
  };
  const auto per_record = ingest(0);
  const auto batched = ingest(32);
  EXPECT_EQ(per_record.first, 1u);
  EXPECT_EQ(per_record.first, batched.first);
  EXPECT_EQ(per_record.second, batched.second);
}

}  // namespace
}  // namespace wildenergy
