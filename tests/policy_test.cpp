// Tests for the background-traffic management policies (core/policy.h).
#include <gtest/gtest.h>

#include "core/policy.h"
#include "trace/sink.h"

namespace wildenergy::core {
namespace {

using trace::PacketRecord;
using trace::ProcessState;
using trace::StateTransition;

trace::StudyMeta meta10d() {
  trace::StudyMeta meta;
  meta.num_users = 1;
  meta.num_apps = 4;
  meta.study_begin = kEpoch;
  meta.study_end = kEpoch + days(10.0);
  return meta;
}

PacketRecord pkt(double t_days, trace::AppId app, ProcessState state,
                 trace::FlowId flow = 0, std::uint64_t bytes = 1000) {
  PacketRecord p;
  p.time = kEpoch + days(t_days);
  p.app = app;
  p.flow = flow;
  p.bytes = bytes;
  p.state = state;
  return p;
}

StateTransition trans(double t_days, trace::AppId app, bool to_fg) {
  StateTransition t;
  t.time = kEpoch + days(t_days);
  t.app = app;
  t.from = to_fg ? ProcessState::kBackground : ProcessState::kForeground;
  t.to = to_fg ? ProcessState::kForeground : ProcessState::kBackground;
  return t;
}

TEST(KillAfterIdlePolicy, SuppressesAfterIdleWindow) {
  trace::TraceCollector out;
  KillAfterIdlePolicy policy{&out, days(3.0)};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_packet(pkt(0.1, 1, ProcessState::kForeground));  // fg use re-arms
  policy.on_packet(pkt(1.0, 1, ProcessState::kService));     // within 3 days: pass
  policy.on_packet(pkt(5.0, 1, ProcessState::kService));     // idle > 3 days: drop
  policy.on_user_end(0);
  ASSERT_EQ(out.packets().size(), 2u);
  EXPECT_EQ(policy.packets_dropped(), 1u);
  EXPECT_EQ(policy.bytes_dropped(), 1000u);
}

TEST(KillAfterIdlePolicy, TransitionToForegroundReArms) {
  trace::TraceCollector out;
  KillAfterIdlePolicy policy{&out, days(3.0)};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_transition(trans(4.0, 1, true));              // user opens the app
  policy.on_packet(pkt(5.0, 1, ProcessState::kService));  // 1 day since fg: pass
  policy.on_user_end(0);
  EXPECT_EQ(out.packets().size(), 1u);
}

TEST(KillAfterIdlePolicy, NeverForegroundedSuppressedFromStudyStart) {
  trace::TraceCollector out;
  KillAfterIdlePolicy policy{&out, days(3.0)};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_packet(pkt(1.0, 2, ProcessState::kService));  // pass: < 3 days in
  policy.on_packet(pkt(4.0, 2, ProcessState::kService));  // drop
  policy.on_user_end(0);
  EXPECT_EQ(out.packets().size(), 1u);
}

TEST(KillAfterIdlePolicy, WhitelistExempts) {
  trace::TraceCollector out;
  KillAfterIdlePolicy policy{&out, days(3.0), {trace::AppId{2}}};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_packet(pkt(9.0, 2, ProcessState::kService));  // widget: whitelisted
  policy.on_packet(pkt(9.0, 3, ProcessState::kService));  // dropped
  policy.on_user_end(0);
  ASSERT_EQ(out.packets().size(), 1u);
  EXPECT_EQ(out.packets()[0].app, 2u);
}

TEST(KillAfterIdlePolicy, ForegroundAlwaysPasses) {
  trace::TraceCollector out;
  KillAfterIdlePolicy policy{&out, days(3.0)};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_packet(pkt(9.0, 1, ProcessState::kForeground));
  policy.on_packet(pkt(9.1, 1, ProcessState::kService));  // re-armed by the fg packet
  policy.on_user_end(0);
  EXPECT_EQ(out.packets().size(), 2u);
}

TEST(KillAfterIdlePolicy, StatePerUserIsReset) {
  trace::TraceCollector out;
  KillAfterIdlePolicy policy{&out, days(3.0)};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_packet(pkt(0.1, 1, ProcessState::kForeground));
  policy.on_user_end(0);
  policy.on_user_begin(1);
  // User 1 never foregrounded app 1; idle clock starts at study begin.
  policy.on_packet(pkt(5.0, 1, ProcessState::kService));
  policy.on_user_end(1);
  EXPECT_EQ(policy.packets_dropped(), 1u);
}

TEST(DozeLikePolicy, DropsOutsideMaintenanceWindows) {
  trace::TraceCollector out;
  DozeLikePolicy policy{&out, hours(1.0), hours(4.0), minutes(5.0)};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_transition(trans(0.0, 1, true));
  policy.on_transition(trans(0.001, 1, false));
  // 30 min after activity: not dozing yet.
  policy.on_packet(pkt(0.5 / 24.0, 1, ProcessState::kService));
  // 2 h after activity: dozing, and 1 h into doze is outside the window.
  policy.on_packet(pkt(2.0 / 24.0, 1, ProcessState::kService));
  // Exactly 1 h + 4 h + 1 min after activity: inside a maintenance window.
  policy.on_packet(pkt((5.0 + 1.0 / 60.0) / 24.0, 1, ProcessState::kService));
  policy.on_user_end(0);
  ASSERT_EQ(out.packets().size(), 2u);
  EXPECT_EQ(policy.packets_dropped(), 1u);
}

TEST(DozeLikePolicy, ForegroundActivityWakesDevice) {
  trace::TraceCollector out;
  DozeLikePolicy policy{&out, hours(1.0), hours(4.0), minutes(5.0)};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_packet(pkt(0.0, 1, ProcessState::kForeground));
  policy.on_packet(pkt(2.0 / 24.0, 2, ProcessState::kService));   // dozing: drop
  policy.on_packet(pkt(2.01 / 24.0, 1, ProcessState::kForeground));  // wake
  policy.on_packet(pkt(2.02 / 24.0, 2, ProcessState::kService));  // pass
  policy.on_user_end(0);
  EXPECT_EQ(policy.packets_dropped(), 1u);
  EXPECT_EQ(out.packets().size(), 3u);
}

TEST(LeakTerminationPolicy, DropsOnlyForegroundInitiatedFlows) {
  trace::TraceCollector out;
  LeakTerminationPolicy policy{&out};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_packet(pkt(0.0, 1, ProcessState::kForeground, /*flow=*/10));
  // Same flow continuing in background (a §4.1 leak): dropped.
  policy.on_packet(pkt(0.001, 1, ProcessState::kBackground, /*flow=*/10));
  // A genuine background flow (periodic sync): passes.
  policy.on_packet(pkt(0.002, 1, ProcessState::kService, /*flow=*/11));
  policy.on_user_end(0);
  ASSERT_EQ(out.packets().size(), 2u);
  EXPECT_EQ(policy.packets_dropped(), 1u);
  EXPECT_EQ(out.packets()[1].flow, 11u);
}

TEST(LeakTerminationPolicy, FlowTableResetsPerUser) {
  trace::TraceCollector out;
  LeakTerminationPolicy policy{&out};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_packet(pkt(0.0, 1, ProcessState::kForeground, /*flow=*/10));
  policy.on_user_end(0);
  policy.on_user_begin(1);
  // Flow id 10 for user 1 is a different flow; background here is fine.
  policy.on_packet(pkt(0.0, 1, ProcessState::kBackground, /*flow=*/10));
  policy.on_user_end(1);
  EXPECT_EQ(policy.packets_dropped(), 0u);
}

TEST(PacketFilterPolicy, ForwardsBracketingCallbacks) {
  trace::TraceCollector out;
  LeakTerminationPolicy policy{&out};
  policy.on_study_begin(meta10d());
  policy.on_user_begin(0);
  policy.on_transition(trans(0.1, 1, true));
  policy.on_user_end(0);
  policy.on_study_end();
  EXPECT_EQ(out.meta().num_users, 1u);
  EXPECT_EQ(out.transitions().size(), 1u);
}

}  // namespace
}  // namespace wildenergy::core
