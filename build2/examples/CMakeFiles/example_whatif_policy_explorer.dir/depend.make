# Empty dependencies file for example_whatif_policy_explorer.
# This may be replaced when dependencies are built.
