#include "obs/trace_writer.h"

#include <fstream>
#include <ostream>

namespace wildenergy::obs {

namespace {
// Span/track names are library-generated, but escape defensively so the
// output is valid JSON whatever the analysis names contain.
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}
}  // namespace

void TraceWriter::add_complete(std::string name, std::string category, std::int64_t ts_us,
                               std::int64_t dur_us, int tid) {
  const std::lock_guard<std::mutex> lock{mu_};
  events_.push_back({std::move(name), std::move(category), ts_us, dur_us, tid});
}

void TraceWriter::set_track_name(int tid, std::string name) {
  const std::lock_guard<std::mutex> lock{mu_};
  tracks_.push_back({tid, std::move(name)});
}

std::size_t TraceWriter::span_count() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return events_.size();
}

void TraceWriter::write(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock{mu_};
  os << "[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const auto& t : tracks_) {
    sep();
    os << R"({"ph":"M","name":"thread_name","pid":1,"tid":)" << t.tid << R"(,"args":{"name":)";
    write_json_string(os, t.name);
    os << "}}";
  }
  for (const auto& e : events_) {
    sep();
    os << R"({"ph":"X","name":)";
    write_json_string(os, e.name);
    os << R"(,"cat":)";
    write_json_string(os, e.category.empty() ? "pipeline" : e.category);
    os << R"(,"ts":)" << e.ts_us << R"(,"dur":)" << e.dur_us << R"(,"pid":1,"tid":)" << e.tid
       << "}";
  }
  os << "\n]\n";
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream os{path};
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace wildenergy::obs
