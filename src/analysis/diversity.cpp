#include "analysis/diversity.h"

#include <algorithm>
#include <map>
#include <set>

#include "energy/account_cursor.h"

namespace wildenergy::analysis {

DiversityResult top_n_diversity(const energy::EnergyLedger& ledger, std::size_t top_n,
                                util::Status* status) {
  DiversityResult out;

  std::vector<std::set<trace::AppId>> top_sets;
  util::Status st = energy::for_each_user_accounts(
      ledger, [&](trace::UserId, std::span<const energy::AppUserAccount> accounts) {
        std::vector<const energy::AppUserAccount*> ranked;
        ranked.reserve(accounts.size());
        for (const auto& acc : accounts) ranked.push_back(&acc);
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto* a, const auto* b) { return a->bytes > b->bytes; });
        std::set<trace::AppId> top;
        for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
          top.insert(ranked[i]->app);
        }
        top_sets.push_back(std::move(top));
      });
  if (status != nullptr) status->update(st);
  out.users = top_sets.size();
  if (out.users < 2) return out;

  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < top_sets.size(); ++i) {
    for (std::size_t j = i + 1; j < top_sets.size(); ++j) {
      std::size_t inter = 0;
      for (trace::AppId app : top_sets[i]) inter += top_sets[j].count(app);
      const std::size_t uni = top_sets[i].size() + top_sets[j].size() - inter;
      const double jaccard = uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
      sum += jaccard;
      out.min_pairwise_jaccard = std::min(out.min_pairwise_jaccard, jaccard);
      out.max_pairwise_jaccard = std::max(out.max_pairwise_jaccard, jaccard);
      ++pairs;
    }
  }
  out.mean_pairwise_jaccard = sum / static_cast<double>(pairs);

  std::map<trace::AppId, std::size_t> membership;
  for (const auto& top : top_sets) {
    for (trace::AppId app : top) membership[app]++;
  }
  for (const auto& [app, count] : membership) {
    if (count == 1) ++out.single_user_apps;
    if (count == out.users) ++out.universal_apps;
  }
  return out;
}

}  // namespace wildenergy::analysis
