// StudyGenerator: turns a StudyConfig + AppCatalog into the full synthetic
// trace stream, replacing the paper's proprietary 22-month user study
// (DESIGN.md §1). Deterministic: identical (config, catalog) => identical
// byte-for-byte stream.
#pragma once

#include "appmodel/catalog.h"
#include "sim/study_config.h"
#include "trace/sink.h"
#include "trace/trace_source.h"

namespace wildenergy::sim {

class StudyGenerator : public trace::TraceSource {
 public:
  /// Uses appmodel::AppCatalog::full_catalog(config.seed, config.total_apps).
  explicit StudyGenerator(StudyConfig config);
  /// Uses a caller-provided catalog (e.g. paper_catalog() for case studies).
  StudyGenerator(StudyConfig config, appmodel::AppCatalog catalog);

  /// Generate the whole study into `sink`: users in id order, each user's
  /// packets and transitions in non-decreasing time order. With
  /// `batch_size > 0` events are delivered via sink.on_batch in spans of
  /// that many events (brackets stay per-record); outputs are bit-identical
  /// for every batch size because on_batch defaults to per-record replay.
  void run(trace::TraceSink& sink, std::size_t batch_size = 0) const;

  /// Generate only one user's stream (still bracketed by study begin/end).
  /// Used by tests and by per-user parallel analyses.
  void run_user(trace::UserId user, trace::TraceSink& sink, std::size_t batch_size = 0) const;

  // TraceSource: the generator is the synthetic-study source. Generation is
  // deterministic and repeatable, so emit()/emit_user() always succeed and
  // per-user random access is free.
  util::Status emit(trace::TraceSink& sink, std::size_t batch_size) override {
    run(sink, batch_size);
    return util::Status::ok_status();
  }
  util::Status emit_user(trace::UserId user, trace::TraceSink& sink,
                         std::size_t batch_size) override {
    run_user(user, sink, batch_size);
    return util::Status::ok_status();
  }
  [[nodiscard]] bool supports_user_access() const override { return true; }

  [[nodiscard]] const StudyConfig& config() const { return config_; }
  [[nodiscard]] const appmodel::AppCatalog& catalog() const { return catalog_; }
  [[nodiscard]] trace::StudyMeta meta() const override;

 private:
  StudyConfig config_;
  appmodel::AppCatalog catalog_;
};

}  // namespace wildenergy::sim
