// Generic burst-driven radio state machine.
//
// LTE, UMTS and WiFi all share the same skeleton — promote, transfer,
// multi-phase tail, idle — and differ only in parameters (power levels,
// durations, whether a mid-tail arrival needs a repromotion). This class
// implements the skeleton once; LteModel/UmtsModel/WifiModel are thin
// parameterizations (R: avoid duplication; see DESIGN.md §2).
#pragma once

#include "obs/metrics.h"
#include "radio/power_params.h"
#include "radio/radio_model.h"

namespace wildenergy::radio {

class BurstMachine final : public RadioModel {
 public:
  explicit BurstMachine(BurstMachineParams params);

  void on_transfer(const TransferEvent& event, const SegmentSink& sink) override;
  void on_transfers(const TransferEvent* events, std::size_t count,
                    const IndexedSegmentSink& sink) override;
  void finish(TimePoint end, const SegmentSink& sink) override;
  [[nodiscard]] bool is_powered_at(TimePoint t) const override;
  [[nodiscard]] std::string name() const override { return params_.model_name; }
  void reset() override;

  [[nodiscard]] const BurstMachineParams& params() const { return params_; }

  /// Airtime a burst of `bytes` occupies (rate-limited, floored at
  /// min_transfer_time). Exposed for tests and workload sizing.
  [[nodiscard]] Duration transfer_duration(std::uint64_t bytes, Direction dir) const;

  /// Closed-form energy of one isolated burst starting from idle, including
  /// promotion and the full tail. Used by tests as an oracle and by app
  /// designers as a "cost of one update" query.
  [[nodiscard]] double isolated_burst_energy(std::uint64_t bytes, Direction dir) const;

 private:
  /// Emit tail/idle segments covering [cursor_, until); updates cursor_.
  /// `stop_mid_tail` receives the index of the tail phase active at `until`
  /// (or npos if the machine reached idle).
  void emit_gap(TimePoint until, const SegmentSink& sink, std::size_t& phase_at_until);

  static constexpr std::size_t kIdlePhase = static_cast<std::size_t>(-1) - 1;
  static constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

  BurstMachineParams params_;
  bool started_ = false;
  TimePoint cursor_{};        ///< segments emitted up to here
  TimePoint active_until_{};  ///< end of the last transfer's airtime

  // Instrumentation: "radio.*" counters resolved once at construction from
  // obs::MetricsRegistry::current() — the shard-local registry when built on
  // a pipeline worker, global() otherwise — so the hot path pays a single
  // pointer increment. Counting never feeds back into the energy math.
  obs::Counter* ctr_bursts_;
  obs::Counter* ctr_bursts_queued_;
  obs::Counter* ctr_promotions_;
  obs::Counter* ctr_repromotions_;
};

/// Factory helpers matching the parameter sets in power_params.h.
[[nodiscard]] std::unique_ptr<RadioModel> make_lte_model();
[[nodiscard]] std::unique_ptr<RadioModel> make_lte_fast_dormancy_model();
[[nodiscard]] std::unique_ptr<RadioModel> make_umts_model();
[[nodiscard]] std::unique_ptr<RadioModel> make_wifi_model();

}  // namespace wildenergy::radio
