// Tests for the compact binary trace format (trace/binary_io.h).
#include <gtest/gtest.h>

#include <sstream>

#include "sim/generator.h"
#include "trace/binary_io.h"
#include "trace/csv_io.h"

namespace wildenergy::trace {
namespace {

sim::StudyConfig tiny_config() {
  sim::StudyConfig cfg = sim::small_study(7);
  cfg.num_users = 2;
  cfg.num_days = 7;
  cfg.total_apps = 40;
  return cfg;
}

std::string serialize_binary(const sim::StudyGenerator& gen) {
  std::ostringstream os;
  BinaryTraceWriter writer{os};
  gen.run(writer);
  return os.str();
}

TEST(BinaryIo, RoundTripPreservesEveryField) {
  const sim::StudyGenerator gen{tiny_config()};
  TraceCollector original;
  gen.run(original);

  std::istringstream is{serialize_binary(gen)};
  TraceCollector replayed;
  const auto result = read_binary_trace(is, replayed);
  ASSERT_TRUE(result.ok()) << result.error();

  ASSERT_EQ(replayed.packets().size(), original.packets().size());
  ASSERT_EQ(replayed.transitions().size(), original.transitions().size());
  EXPECT_EQ(replayed.meta().num_users, original.meta().num_users);
  EXPECT_EQ(replayed.meta().study_end.us, original.meta().study_end.us);
  for (std::size_t i = 0; i < original.packets().size(); ++i) {
    const auto& a = original.packets()[i];
    const auto& b = replayed.packets()[i];
    EXPECT_EQ(a.time.us, b.time.us);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.direction, b.direction);
    EXPECT_EQ(a.interface, b.interface);
    EXPECT_EQ(a.state, b.state);
    EXPECT_DOUBLE_EQ(a.joules, b.joules);
  }
  for (std::size_t i = 0; i < original.transitions().size(); ++i) {
    EXPECT_EQ(original.transitions()[i].time.us, replayed.transitions()[i].time.us);
    EXPECT_EQ(original.transitions()[i].from, replayed.transitions()[i].from);
    EXPECT_EQ(original.transitions()[i].to, replayed.transitions()[i].to);
  }
}

TEST(BinaryIo, SubstantiallySmallerThanCsv) {
  const sim::StudyGenerator gen{tiny_config()};
  std::ostringstream csv;
  CsvTraceWriter csv_writer{csv};
  gen.run(csv_writer);
  const std::string binary = serialize_binary(gen);
  EXPECT_LT(binary.size() * 2, csv.str().size());  // at least 2x smaller
}

TEST(BinaryIo, RejectsBadMagic) {
  std::istringstream is{"NOPE...."};
  TraceCollector sink;
  const auto result = read_binary_trace(is, sink);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error(), "bad magic");
}

TEST(BinaryIo, DetectsCorruption) {
  const sim::StudyGenerator gen{tiny_config()};
  std::string data = serialize_binary(gen);
  // Flip a byte in the middle of the payload.
  data[data.size() / 2] ^= 0x40;
  std::istringstream is{data};
  TraceCollector sink;
  const auto result = read_binary_trace(is, sink);
  EXPECT_FALSE(result.ok());  // checksum mismatch or parse failure
}

TEST(BinaryIo, DetectsTruncation) {
  const sim::StudyGenerator gen{tiny_config()};
  std::string data = serialize_binary(gen);
  data.resize(data.size() / 2);
  std::istringstream is{data};
  TraceCollector sink;
  const auto result = read_binary_trace(is, sink);
  EXPECT_FALSE(result.ok());
}

TEST(BinaryIo, EmptyStudyRoundTrips) {
  std::ostringstream os;
  BinaryTraceWriter writer{os};
  StudyMeta meta;
  meta.num_users = 0;
  meta.num_apps = 0;
  writer.on_study_begin(meta);
  writer.on_study_end();

  std::istringstream is{os.str()};
  TraceCollector sink;
  const auto result = read_binary_trace(is, sink);
  EXPECT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(sink.packets().empty());
}

}  // namespace
}  // namespace wildenergy::trace
