#include "analysis/longitudinal.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "energy/account_file.h"
#include "trace/batch.h"

namespace wildenergy::analysis {

double WeeklySeries::max_weekly_bg_fluctuation() const {
  if (bg_joules.size() < 3) return 0.0;
  double peak = 0.0;
  for (double w : bg_joules) peak = std::max(peak, w);
  double worst = 0.0;
  // Skip the first and last week (partial weeks distort ratios).
  for (std::size_t w = 2; w + 1 < bg_joules.size(); ++w) {
    const double prev = bg_joules[w - 1];
    if (prev < 0.02 * peak) continue;  // ramp-in noise
    worst = std::max(worst, std::abs(bg_joules[w] - prev) / prev);
  }
  return worst;
}

LongitudinalAnalysis::LongitudinalAnalysis(std::vector<trace::AppId> tracked_apps)
    : tracked_(std::move(tracked_apps)) {
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    const trace::AppId app = tracked_[i];
    if (app >= tracked_index_.size()) tracked_index_.resize(app + 1, kUntracked);
    tracked_index_[app] = static_cast<std::uint32_t>(i);
  }
}

void LongitudinalAnalysis::on_study_begin(const trace::StudyMeta& meta) {
  meta_ = meta;
  num_days_ = static_cast<std::int64_t>(std::ceil(meta.span().days()));
  num_weeks_ = std::max<std::size_t>(static_cast<std::size_t>((num_days_ + 6) / 7), 1);
  users_.clear();
  // Fold mode never allocates the dense per-user partial array: the live
  // user accumulates in live_ and folds release it (DESIGN.md §15).
  if (spill_ == nullptr) users_.resize(meta.num_users);
  cur_ = nullptr;
  spilled_self_ = 0;
  live_valid_ = false;
  staged_.clear();
  folded_fg_weeks_.assign(num_weeks_, 0.0);
  folded_bg_weeks_.assign(num_weeks_, 0.0);
  folded_eras_.assign(tracked_.size(), EraAccum{});
  dirty_ = true;
}

LongitudinalAnalysis::UserPart& LongitudinalAnalysis::user_part(trace::UserId user) {
  if (spill_ != nullptr) {
    if (!live_valid_ || live_user_ != user) {
      live_.fg_weeks.assign(num_weeks_, 0.0);
      live_.bg_weeks.assign(num_weeks_, 0.0);
      live_.eras.assign(tracked_.size(), EraAccum{});
      live_user_ = user;
      live_valid_ = true;
    }
    return live_;
  }
  if (user >= users_.size()) users_.resize(user + 1);
  auto& slot = users_[user];
  if (!slot) {
    slot = std::make_unique<UserPart>();
    slot->fg_weeks.assign(num_weeks_, 0.0);
    slot->bg_weeks.assign(num_weeks_, 0.0);
    slot->eras.resize(tracked_.size());
  }
  return *slot;
}

void LongitudinalAnalysis::on_packet(const trace::PacketRecord& p) {
  if (cur_ == nullptr || cur_user_ != p.user) {
    cur_user_ = p.user;
    cur_ = &user_part(p.user);
  }
  UserPart& part = *cur_;
  dirty_ = true;

  const std::int64_t day = (p.time - meta_.study_begin).us / 86'400'000'000LL;
  const auto week = static_cast<std::size_t>(
      std::clamp<std::int64_t>(day / 7, 0, static_cast<std::int64_t>(num_weeks_) - 1));
  if (trace::is_foreground(p.state)) {
    part.fg_weeks[week] += p.joules;
  } else {
    part.bg_weeks[week] += p.joules;
  }

  if (p.app >= tracked_index_.size()) return;
  const std::uint32_t slot = tracked_index_[p.app];
  if (slot == kUntracked) return;
  EraAccum& era = part.eras[slot];
  if (day < num_days_ / 3) {
    era.early_joules += p.joules;
    era.early_bytes += p.bytes;
  } else if (day >= num_days_ - num_days_ / 3) {
    era.late_joules += p.joules;
    era.late_bytes += p.bytes;
  }
}

void LongitudinalAnalysis::on_batch(const trace::EventBatch& batch) {
  if (batch.packets.empty()) return;
  // Batches lie inside one user bracket: hoist the user partial, then run a
  // tight pass over the packet column (transitions are ignored).
  UserPart& part = user_part(batch.user);
  dirty_ = true;
  const std::int64_t begin_us = meta_.study_begin.us;
  const auto last_week = static_cast<std::int64_t>(num_weeks_) - 1;
  for (const auto& p : batch.packets) {
    const std::int64_t day = (p.time.us - begin_us) / 86'400'000'000LL;
    const auto week =
        static_cast<std::size_t>(std::clamp<std::int64_t>(day / 7, 0, last_week));
    (trace::is_foreground(p.state) ? part.fg_weeks : part.bg_weeks)[week] += p.joules;

    if (p.app >= tracked_index_.size()) continue;
    const std::uint32_t slot = tracked_index_[p.app];
    if (slot == kUntracked) continue;
    EraAccum& era = part.eras[slot];
    if (day < num_days_ / 3) {
      era.early_joules += p.joules;
      era.early_bytes += p.bytes;
    } else if (day >= num_days_ - num_days_ / 3) {
      era.late_joules += p.joules;
      era.late_bytes += p.bytes;
    }
  }
}

std::unique_ptr<trace::TraceSink> LongitudinalAnalysis::clone_shard() const {
  return std::make_unique<LongitudinalAnalysis>(tracked_);
}

void LongitudinalAnalysis::merge_from(trace::TraceSink& shard) {
  auto& other = dynamic_cast<LongitudinalAnalysis&>(shard);
  if (spill_ != nullptr) {
    // Fold mode: stage the shard's rows until the engine's fold_user call
    // collapses and spills them (shards run resident over their one user).
    for (std::size_t user = 0; user < other.users_.size(); ++user) {
      if (!other.users_[user]) continue;
      staged_.emplace_back(static_cast<trace::UserId>(user), std::move(*other.users_[user]));
      other.users_[user].reset();
    }
    cur_ = nullptr;
    other.cur_ = nullptr;
    dirty_ = true;
    return;
  }
  if (other.users_.size() > users_.size()) users_.resize(other.users_.size());
  for (std::size_t user = 0; user < other.users_.size(); ++user) {
    if (other.users_[user]) users_[user] = std::move(other.users_[user]);
  }
  cur_ = nullptr;
  other.cur_ = nullptr;
  dirty_ = true;
}

void LongitudinalAnalysis::fold_user(trace::UserId user) {
  if (spill_ == nullptr) return;
  UserPart* part = nullptr;
  auto staged_it = staged_.end();
  if (live_valid_ && live_user_ == user) {
    part = &live_;
  } else {
    staged_it = std::find_if(staged_.begin(), staged_.end(),
                             [user](const auto& entry) { return entry.first == user; });
    if (staged_it != staged_.end()) part = &staged_it->second;
  }
  if (part == nullptr) return;  // the user had no traffic for this sink
  // Stream order is ascending user id, so these running sums reproduce the
  // ascending query-time fold bit for bit.
  for (std::size_t w = 0; w < num_weeks_; ++w) {
    folded_fg_weeks_[w] += part->fg_weeks[w];
    folded_bg_weeks_[w] += part->bg_weeks[w];
  }
  for (std::size_t i = 0; i < folded_eras_.size(); ++i) {
    folded_eras_[i].early_joules += part->eras[i].early_joules;
    folded_eras_[i].late_joules += part->eras[i].late_joules;
    folded_eras_[i].early_bytes += part->eras[i].early_bytes;
    folded_eras_[i].late_bytes += part->eras[i].late_bytes;
  }
  ckpt::ByteWriter row;
  row.put_f64_span(part->fg_weeks);
  row.put_f64_span(part->bg_weeks);
  row.put_varint(part->eras.size());
  for (const EraAccum& era : part->eras) {
    row.put_f64(era.early_joules);
    row.put_f64(era.late_joules);
    row.put_varint(era.early_bytes);
    row.put_varint(era.late_bytes);
  }
  spilled_self_ += spill_->add_section(kLongitSection, row.bytes());
  if (staged_it != staged_.end()) {
    staged_.erase(staged_it);
  } else {
    live_valid_ = false;
  }
  cur_ = nullptr;
  dirty_ = true;
}

void LongitudinalAnalysis::save_state(ckpt::ByteWriter& out) const {
  // Leading mode byte: 0 = dense resident partials (historical body
  // follows); 1 = fold mode, folded week/era sums first.
  out.put_u8(spill_ != nullptr ? 1 : 0);
  if (spill_ != nullptr) {
    out.put_f64_span(folded_fg_weeks_);
    out.put_f64_span(folded_bg_weeks_);
    out.put_varint(folded_eras_.size());
    for (const EraAccum& era : folded_eras_) {
      out.put_f64(era.early_joules);
      out.put_f64(era.late_joules);
      out.put_varint(era.early_bytes);
      out.put_varint(era.late_bytes);
    }
    out.put_varint(spilled_self_);
  }
  out.put_varint(users_.size());
  for (const auto& part : users_) {
    out.put_u8(part ? 1 : 0);
    if (!part) continue;
    out.put_f64_span(part->fg_weeks);
    out.put_f64_span(part->bg_weeks);
    out.put_varint(part->eras.size());
    for (const EraAccum& era : part->eras) {
      out.put_f64(era.early_joules);
      out.put_f64(era.late_joules);
      out.put_varint(era.early_bytes);
      out.put_varint(era.late_bytes);
    }
  }
}

util::Status LongitudinalAnalysis::restore_state(ckpt::ByteReader& in) {
  auto mode = in.get_u8("longitudinal.mode");
  if (!mode.ok()) return mode.status();
  if (*mode > 1) {
    return util::Status::data_loss("corrupt checkpoint: unknown longitudinal mode " +
                                   std::to_string(*mode));
  }
  spilled_self_ = 0;
  live_valid_ = false;
  staged_.clear();
  folded_fg_weeks_.assign(num_weeks_, 0.0);
  folded_bg_weeks_.assign(num_weeks_, 0.0);
  folded_eras_.assign(tracked_.size(), EraAccum{});
  if (*mode == 1) {
    auto status = in.get_f64_span(folded_fg_weeks_, "longitudinal.folded_fg_weeks");
    if (!status.ok()) return status;
    status = in.get_f64_span(folded_bg_weeks_, "longitudinal.folded_bg_weeks");
    if (!status.ok()) return status;
    auto num_eras = in.get_varint("longitudinal.folded_eras");
    if (!num_eras.ok()) return num_eras.status();
    if (*num_eras != folded_eras_.size()) {
      return util::Status::data_loss("corrupt checkpoint: longitudinal tracks " +
                                     std::to_string(folded_eras_.size()) +
                                     " apps, snapshot holds " + std::to_string(*num_eras));
    }
    for (EraAccum& era : folded_eras_) {
      auto early_j = in.get_f64("longitudinal.folded_era_early_joules");
      if (!early_j.ok()) return early_j.status();
      era.early_joules = *early_j;
      auto late_j = in.get_f64("longitudinal.folded_era_late_joules");
      if (!late_j.ok()) return late_j.status();
      era.late_joules = *late_j;
      auto early_b = in.get_varint("longitudinal.folded_era_early_bytes");
      if (!early_b.ok()) return early_b.status();
      era.early_bytes = *early_b;
      auto late_b = in.get_varint("longitudinal.folded_era_late_bytes");
      if (!late_b.ok()) return late_b.status();
      era.late_bytes = *late_b;
    }
    auto spilled = in.get_varint("longitudinal.spilled_bytes");
    if (!spilled.ok()) return spilled.status();
    spilled_self_ = *spilled;
  }
  auto num_users = in.get_varint("longitudinal.users");
  if (!num_users.ok()) return num_users.status();
  users_.clear();
  users_.resize(*num_users);
  cur_ = nullptr;
  for (auto& slot : users_) {
    auto present = in.get_u8("longitudinal.user_present");
    if (!present.ok()) return present.status();
    if (*present == 0) continue;
    auto part = std::make_unique<UserPart>();
    part->fg_weeks.assign(num_weeks_, 0.0);
    part->bg_weeks.assign(num_weeks_, 0.0);
    auto status = in.get_f64_span(part->fg_weeks, "longitudinal.fg_weeks");
    if (!status.ok()) return status;
    status = in.get_f64_span(part->bg_weeks, "longitudinal.bg_weeks");
    if (!status.ok()) return status;
    auto num_eras = in.get_varint("longitudinal.eras");
    if (!num_eras.ok()) return num_eras.status();
    part->eras.resize(*num_eras);
    for (EraAccum& era : part->eras) {
      auto early_j = in.get_f64("longitudinal.era_early_joules");
      if (!early_j.ok()) return early_j.status();
      era.early_joules = *early_j;
      auto late_j = in.get_f64("longitudinal.era_late_joules");
      if (!late_j.ok()) return late_j.status();
      era.late_joules = *late_j;
      auto early_b = in.get_varint("longitudinal.era_early_bytes");
      if (!early_b.ok()) return early_b.status();
      era.early_bytes = *early_b;
      auto late_b = in.get_varint("longitudinal.era_late_bytes");
      if (!late_b.ok()) return late_b.status();
      era.late_bytes = *late_b;
    }
    slot = std::move(part);
  }
  dirty_ = true;
  return util::Status::ok_status();
}

void LongitudinalAnalysis::fold() const {
  if (!dirty_) return;
  const auto add_part = [this](const UserPart& part) {
    for (std::size_t w = 0; w < num_weeks_; ++w) {
      overall_.fg_joules[w] += part.fg_weeks[w];
      overall_.bg_joules[w] += part.bg_weeks[w];
    }
    for (std::size_t i = 0; i < eras_.size(); ++i) {
      eras_[i].early_joules += part.eras[i].early_joules;
      eras_[i].late_joules += part.eras[i].late_joules;
      eras_[i].early_bytes += part.eras[i].early_bytes;
      eras_[i].late_bytes += part.eras[i].late_bytes;
    }
  };
  // Folded prefix first, then the resident remainder in the same ascending
  // user order — the identical floating-point fold either way.
  if (spill_ != nullptr) {
    overall_.fg_joules = folded_fg_weeks_;
    overall_.bg_joules = folded_bg_weeks_;
    eras_ = folded_eras_;
  } else {
    overall_.fg_joules.assign(num_weeks_, 0.0);
    overall_.bg_joules.assign(num_weeks_, 0.0);
    eras_.assign(tracked_.size(), EraAccum{});
  }
  for (const auto& part : users_) {
    if (part) add_part(*part);
  }
  for (const auto& [user, part] : staged_) add_part(part);
  if (live_valid_) add_part(live_);
  dirty_ = false;
}

const WeeklySeries& LongitudinalAnalysis::overall() const {
  fold();
  return overall_;
}

EraComparison LongitudinalAnalysis::era_comparison(trace::AppId app) const {
  fold();
  EraComparison out;
  out.app = app;
  if (num_days_ < 3) return out;
  if (app >= tracked_index_.size() || tracked_index_[app] == kUntracked) return out;
  const EraAccum& era = eras_[tracked_index_[app]];
  const double era_days = static_cast<double>(num_days_) / 3.0;
  out.early_joules_per_day = era.early_joules / era_days;
  out.late_joules_per_day = era.late_joules / era_days;
  if (era.early_bytes > 0) {
    out.early_uj_per_byte = era.early_joules / static_cast<double>(era.early_bytes) * 1e6;
  }
  if (era.late_bytes > 0) {
    out.late_uj_per_byte = era.late_joules / static_cast<double>(era.late_bytes) * 1e6;
  }
  return out;
}

obs::MemoryUse LongitudinalAnalysis::memory_use() const {
  const auto part_bytes = [](const UserPart& part) -> std::uint64_t {
    return sizeof(UserPart) +
           (part.fg_weeks.capacity() + part.bg_weeks.capacity()) * sizeof(double) +
           part.eras.capacity() * sizeof(EraAccum);
  };
  std::uint64_t total = users_.capacity() * sizeof(users_[0]) +
                        (folded_fg_weeks_.capacity() + folded_bg_weeks_.capacity()) *
                            sizeof(double) +
                        folded_eras_.capacity() * sizeof(EraAccum) + part_bytes(live_);
  for (const auto& part : users_) {
    if (part) total += part_bytes(*part);
  }
  for (const auto& [user, part] : staged_) total += sizeof(user) + part_bytes(part);
  return {.resident_bytes = total, .spilled_bytes = spilled_self_};
}

}  // namespace wildenergy::analysis
