#include "trace/csv_io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "trace/batch.h"

namespace wildenergy::trace {

void CsvTraceWriter::on_study_begin(const StudyMeta& meta) {
  os_ << "M," << meta.num_users << ',' << meta.num_apps << ',' << meta.study_begin.us << ','
      << meta.study_end.us << '\n';
}

void CsvTraceWriter::on_user_begin(UserId user) { os_ << "U," << user << '\n'; }

void CsvTraceWriter::on_packet(const PacketRecord& p) {
  os_ << "P," << p.time.us << ',' << p.user << ',' << p.app << ',' << p.flow << ',' << p.bytes
      << ',' << (p.direction == radio::Direction::kUplink ? "up" : "down") << ','
      << to_string(p.interface) << ',' << to_string(p.state) << ',' << p.joules << '\n';
}

void CsvTraceWriter::on_transition(const StateTransition& t) {
  os_ << "T," << t.time.us << ',' << t.user << ',' << t.app << ',' << to_string(t.from) << ','
      << to_string(t.to) << '\n';
}

void CsvTraceWriter::on_user_end(UserId user) { os_ << "V," << user << '\n'; }

void CsvTraceWriter::on_study_end() { os_ << "E\n"; }

namespace {

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

template <typename T>
bool parse_int(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

constexpr std::size_t kNoField = static_cast<std::size_t>(-1);
constexpr std::size_t kSnippetMax = 80;

std::string snippet_of(std::string_view line) {
  std::string s{line.substr(0, kSnippetMax)};
  if (line.size() > kSnippetMax) s += "...";
  return s;
}

/// What went wrong on one line, precise enough to act on: which field
/// (kNoField for line-level problems) and why.
struct LineError {
  std::size_t field = kNoField;
  std::string reason;
};

std::string format_error(std::uint64_t line_no, const LineError& err,
                         const std::vector<std::string_view>& fields, std::string_view line) {
  std::string msg = "line " + std::to_string(line_no) + ": ";
  if (err.field != kNoField) {
    msg += "field " + std::to_string(err.field);
    if (err.field < fields.size()) msg += " ('" + std::string(fields[err.field]) + "')";
    msg += ": ";
  }
  msg += err.reason;
  msg += "; line: \"" + snippet_of(line) + "\"";
  return msg;
}

}  // namespace

CsvReadResult read_csv_trace(std::istream& is, TraceSink& sink, const ReadOptions& options) {
  if (options.batch_size > 0) {
    // Batched ingestion: parse per record as usual but hand the sink
    // EventBatches. The batcher flushes before every bracket, so the sink
    // sees a bit-identical stream.
    EventBatcher batcher{&sink, options.batch_size};
    ReadOptions per_record = options;
    per_record.batch_size = 0;
    return read_csv_trace(is, batcher, per_record);
  }
  CsvReadResult result;
  auto& registry = obs::MetricsRegistry::current();
  std::string line;
  bool saw_any_record = false;
  bool study_ended = false;

  while (std::getline(is, line)) {
    ++result.lines;
    if (line.empty()) continue;
    const auto fields = split(line);
    const std::string_view tag = fields[0];
    LineError err;
    const auto bad = [&](std::size_t field, std::string reason) {
      err = {field, std::move(reason)};
      return false;
    };
    const auto want_fields = [&](std::size_t n) {
      if (fields.size() == n) return true;
      return bad(kNoField, "expected " + std::to_string(n) + " fields, got " +
                               std::to_string(fields.size()));
    };
    const auto want_int = [&](std::size_t field, auto& out) {
      if (parse_int(fields[field], out)) return true;
      return bad(field, "not an integer");
    };
    const auto want_app = [&](std::size_t field, AppId& out) {
      if (parse_int(fields[field], out)) return true;
      if (options.app_resolver) {
        out = options.app_resolver(fields[field]);
        if (out != kNoApp) return true;
        return bad(field, "unknown app name");
      }
      return bad(field, "not an integer");
    };

    bool line_ok = true;
    bool repaired_line = false;
    std::string repair_reason;
    if (study_ended) {
      line_ok = bad(kNoField, "record after study end (E)");
    } else if (tag == "M") {
      StudyMeta meta;
      line_ok = want_fields(5) && want_int(1, meta.num_users) && want_int(2, meta.num_apps) &&
                want_int(3, meta.study_begin.us) && want_int(4, meta.study_end.us);
      if (line_ok) sink.on_study_begin(meta);
    } else if (tag == "U" || tag == "V") {
      UserId user = 0;
      line_ok = want_fields(2) && want_int(1, user);
      if (line_ok) {
        if (tag == "U") {
          sink.on_user_begin(user);
        } else {
          sink.on_user_end(user);
        }
      }
    } else if (tag == "P") {
      PacketRecord p;
      line_ok = want_fields(10) && want_int(1, p.time.us) && want_int(2, p.user) &&
                want_app(3, p.app) && want_int(4, p.flow) && want_int(5, p.bytes);
      if (line_ok) {
        if (fields[6] == "up") {
          p.direction = radio::Direction::kUplink;
        } else if (fields[6] == "down") {
          p.direction = radio::Direction::kDownlink;
        } else {
          line_ok = bad(6, "bad direction (want up|down)");
        }
      }
      if (line_ok) {
        if (fields[7] == "cell") {
          p.interface = Interface::kCellular;
        } else if (fields[7] == "wifi") {
          p.interface = Interface::kWifi;
        } else {
          line_ok = bad(7, "bad interface (want cell|wifi)");
        }
      }
      if (line_ok && !parse_process_state(fields[8], p.state)) {
        line_ok = bad(8, "bad process state");
      }
      if (line_ok && !parse_double(fields[9], p.joules)) {
        if (options.policy == ReadPolicy::kBestEffort) {
          // Energy is recomputed by the attribution stage on re-analysis, so
          // a garbled joules field alone need not cost the whole record.
          p.joules = 0.0;
          repaired_line = true;
          repair_reason = "unparseable joules repaired to 0";
        } else {
          line_ok = bad(9, "bad joules value");
        }
      }
      if (line_ok) sink.on_packet(p);
    } else if (tag == "T") {
      StateTransition t;
      line_ok = want_fields(6) && want_int(1, t.time.us) && want_int(2, t.user) &&
                want_app(3, t.app);
      if (line_ok && !parse_process_state(fields[4], t.from)) {
        line_ok = bad(4, "bad process state");
      }
      if (line_ok && !parse_process_state(fields[5], t.to)) {
        line_ok = bad(5, "bad process state");
      }
      if (line_ok) sink.on_transition(t);
    } else if (tag == "E") {
      if ((line_ok = want_fields(1))) {
        sink.on_study_end();
        study_ended = true;
      }
    } else {
      line_ok = bad(0, "unknown record tag");
    }

    if (line_ok) {
      saw_any_record = true;
      if (repaired_line) {
        ++result.records_repaired;
        registry.counter("ingest.records_repaired").inc();
        if (result.quarantine.size() < options.max_quarantine) {
          result.quarantine.push_back({result.lines, repair_reason, snippet_of(line)});
        }
      }
      continue;
    }
    const std::string message = format_error(result.lines, err, fields, line);
    if (options.policy == ReadPolicy::kStrict) {
      result.status = util::Status::data_loss(message);
      return result;
    }
    ++result.records_dropped;
    registry.counter("ingest.records_dropped").inc();
    if (result.quarantine.size() < options.max_quarantine) {
      result.quarantine.push_back({result.lines, message, snippet_of(line)});
    }
  }

  if (saw_any_record && !study_ended) {
    if (options.policy == ReadPolicy::kBestEffort) {
      result.truncated = true;
      if (result.quarantine.size() < options.max_quarantine) {
        result.quarantine.push_back(
            {result.lines, "truncated stream: no study end (E) record", ""});
      }
    } else {
      result.status = util::Status::data_loss(
          "truncated stream: no study end (E) record after line " + std::to_string(result.lines));
    }
  }
  return result;
}

util::Status CsvTraceSource::emit(TraceSink& sink, std::size_t batch_size) {
  if (consumed_) {
    // Rewind for replay-many consumers (sweep fallback, repeated runs).
    is_.clear();
    is_.seekg(0);
    if (!is_) {
      return util::Status::failed_precondition(
          "csv trace source: stream already consumed and not seekable");
    }
  }
  consumed_ = true;
  ReadOptions options = options_;
  options.batch_size = batch_size;
  MetaCaptureSink capture(&sink, &meta_);
  CsvReadResult result = read_csv_trace(is_, capture, options);
  summary_ = ReadSummary{result.status,          result.records_dropped,
                         result.records_repaired, result.truncated,
                         /*checksum_ok=*/true,    std::move(result.quarantine)};
  return summary_.status;
}

}  // namespace wildenergy::trace
