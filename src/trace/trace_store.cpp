#include "trace/trace_store.h"

#include <algorithm>
#include <string>

namespace wildenergy::trace {

void TraceStore::on_study_begin(const StudyMeta& meta) {
  clear();
  meta_ = meta;
}

void TraceStore::on_user_begin(UserId user) {
  users_.emplace_back();
  users_.back().user = user;
  index_[user] = users_.size() - 1;
  current_ = &users_.back();
}

void TraceStore::on_packet(const PacketRecord& packet) {
  if (current_ != nullptr) current_->add(packet);
}

void TraceStore::on_transition(const StateTransition& transition) {
  if (current_ != nullptr) current_->add(transition);
}

void TraceStore::on_user_end(UserId /*user*/) { current_ = nullptr; }

void TraceStore::on_study_end() { current_ = nullptr; }

void TraceStore::on_batch(const EventBatch& batch) {
  if (current_ == nullptr) return;
  // Wholesale column append — no per-event dispatch on the capture path.
  current_->packets.insert(current_->packets.end(), batch.packets.begin(), batch.packets.end());
  current_->transitions.insert(current_->transitions.end(), batch.transitions.begin(),
                               batch.transitions.end());
  current_->order.insert(current_->order.end(), batch.order.begin(), batch.order.end());
}

util::Status TraceStore::capture(TraceSource& source, std::size_t batch_size) {
  return source.emit(*this, batch_size);
}

void TraceStore::replay_user(const EventBatch& events, TraceSink& sink,
                             std::size_t batch_size) const {
  sink.on_user_begin(events.user);
  if (batch_size == 0) {
    replay(events, sink);  // the per-record stream, in interleave order
  } else if (events.size() <= batch_size) {
    if (!events.empty()) sink.on_batch(events);  // whole user in one span, zero copies
  } else {
    // Slice the columns into batch_size spans, preserving the interleave.
    // Contiguous packet runs (the overwhelming bulk of a stream) copy as
    // whole ranges instead of one record per iteration.
    EventBatch scratch;
    scratch.user = events.user;
    scratch.reserve(batch_size);
    std::size_t pi = 0;
    std::size_t ti = 0;
    std::size_t oi = 0;
    const std::size_t n = events.order.size();
    while (oi < n) {
      if (events.order[oi] == EventKind::kPacket) {
        const std::size_t room = batch_size - scratch.size();
        std::size_t run = 1;
        while (run < room && oi + run < n && events.order[oi + run] == EventKind::kPacket) {
          ++run;
        }
        const auto first = events.packets.begin() + static_cast<std::ptrdiff_t>(pi);
        scratch.packets.insert(scratch.packets.end(), first,
                               first + static_cast<std::ptrdiff_t>(run));
        scratch.order.insert(scratch.order.end(), run, EventKind::kPacket);
        pi += run;
        oi += run;
      } else {
        scratch.add(events.transitions[ti++]);
        ++oi;
      }
      if (scratch.size() >= batch_size) {
        sink.on_batch(scratch);
        scratch.clear();
      }
    }
    if (!scratch.empty()) sink.on_batch(scratch);
  }
  sink.on_user_end(events.user);
}

util::Status TraceStore::emit(TraceSink& sink, std::size_t batch_size) {
  sink.on_study_begin(meta_);
  for (const EventBatch& events : users_) replay_user(events, sink, batch_size);
  sink.on_study_end();
  return util::Status::ok_status();
}

util::Status TraceStore::emit_user(UserId user, TraceSink& sink, std::size_t batch_size) {
  const auto it = index_.find(user);
  if (it == index_.end()) {
    return util::Status::not_found("trace store holds no user " + std::to_string(user));
  }
  sink.on_study_begin(meta_);
  replay_user(users_[it->second], sink, batch_size);
  sink.on_study_end();
  return util::Status::ok_status();
}

std::vector<UserId> TraceStore::users() const {
  std::vector<UserId> ids;
  ids.reserve(users_.size());
  for (const EventBatch& events : users_) ids.push_back(events.user);
  return ids;
}

std::uint64_t TraceStore::event_count() const {
  std::uint64_t n = 0;
  for (const EventBatch& events : users_) n += events.size();
  return n;
}

std::uint64_t TraceStore::memory_bytes() const {
  std::uint64_t bytes = sizeof(*this);
  for (const EventBatch& events : users_) {
    bytes += events.packets.capacity() * sizeof(PacketRecord);
    bytes += events.transitions.capacity() * sizeof(StateTransition);
    bytes += events.order.capacity() * sizeof(EventKind);
    bytes += sizeof(EventBatch);
  }
  bytes += index_.size() * (sizeof(UserId) + sizeof(std::size_t) + 3 * sizeof(void*));
  return bytes;
}

const EventBatch* TraceStore::find_user(UserId user) const {
  const auto it = index_.find(user);
  return it == index_.end() ? nullptr : &users_[it->second];
}

void TraceStore::clear() {
  meta_ = {};
  users_.clear();
  index_.clear();
  current_ = nullptr;
}

}  // namespace wildenergy::trace
