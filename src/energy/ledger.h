// EnergyLedger: per-(user, app) accounting over the annotated trace stream.
//
// One streaming pass populates everything Figures 1-3 and Tables 1-2 need:
//   - total bytes and joules per (user, app),
//   - joules per Android process state (Fig. 3),
//   - per-day foreground/background joules and bytes plus a "had foreground
//     traffic" flag (the §5 what-if analysis),
// while keeping memory at O(users x apps x days) counters, independent of
// packet count.
//
// Data-plane layout (DESIGN.md §12): user and app populations are dense ids
// known up front from StudyMeta, so accounts live in flat per-user slabs —
// one lazily allocated UserState per user holding a dense
// std::vector<AppUserAccount> indexed by AppId — and the hot path is two
// indexed loads instead of a map walk. Ids beyond the StudyMeta hint (hand
// built streams) grow the arrays on demand.
//
// Shardable (trace/shardable.h): one clone per user, folded back with
// merge_from(), which steals the shard's per-user slabs (the shard is left
// empty). Determinism is by construction: study-wide double totals are
// stored as per-user partial sums and folded in user-id order at query time,
// so the serial pass (which fills one partial per user, in order) and the
// sharded merge produce the exact same floating-point fold. accounts()
// iterates user-major, app-ascending — the same deterministic order the old
// (user << 32 | app) ordered map produced — regardless of how the ledger was
// built.
#pragma once

#include <array>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "ckpt/checkpointable.h"
#include "trace/shardable.h"
#include "trace/sink.h"

namespace wildenergy::energy {

class AccountSpill;  // energy/account_file.h

struct DayCell {
  double fg_joules = 0.0;
  double bg_joules = 0.0;
  std::uint64_t fg_bytes = 0;
  std::uint64_t bg_bytes = 0;

  [[nodiscard]] bool any_traffic() const { return fg_bytes + bg_bytes > 0; }
  [[nodiscard]] bool background_only() const { return bg_bytes > 0 && fg_bytes == 0; }
};

struct AppUserAccount {
  trace::UserId user = 0;
  trace::AppId app = 0;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  double joules = 0.0;
  /// Joules per Android process state, indexed by ProcessState.
  std::array<double, trace::kNumProcessStates> state_joules{};
  /// One cell per study day. Empty only while the account has no traffic
  /// (dense slabs hold a slot for every (user, app) pair).
  std::vector<DayCell> days;

  [[nodiscard]] double foreground_joules() const {
    return state_joules[0] + state_joules[1];
  }
  [[nodiscard]] double background_joules() const {
    return state_joules[2] + state_joules[3] + state_joules[4];
  }
};

class EnergyLedger final : public trace::TraceSink,
                           public trace::ShardableSink,
                           public ckpt::CheckpointableSink {
 public:
  EnergyLedger() = default;
  // Copies deep-copy the per-user slabs (sweep results snapshot ledgers);
  // moves steal them.
  EnergyLedger(const EnergyLedger& other);
  EnergyLedger& operator=(const EnergyLedger& other);
  EnergyLedger(EnergyLedger&&) noexcept = default;
  EnergyLedger& operator=(EnergyLedger&&) noexcept = default;

  void on_study_begin(const trace::StudyMeta& meta) override;
  void on_packet(const trace::PacketRecord& packet) override;
  void on_batch(const trace::EventBatch& batch) override;

  // ShardableSink: one ledger clone per user shard, merged in user-id order.
  [[nodiscard]] std::unique_ptr<trace::TraceSink> clone_shard() const override;
  void merge_from(trace::TraceSink& shard) override;

  // -- fold-and-release (DESIGN.md §15) -------------------------------------
  /// Arm fold mode: fold_user() collapses each completed user's slab into
  /// running grand totals (in stream order, so the folds are bit-identical
  /// to the ascending query-time folds of an all-resident run), spills the
  /// detail accounts as a "ledger" row-group section into `spill`, and frees
  /// the slab. Detail consumers then read through an AccountCursor
  /// (energy/account_cursor.h) instead of accounts().
  void set_account_spill(AccountSpill* spill) { spill_ = spill; }
  [[nodiscard]] AccountSpill* account_spill() const { return spill_; }
  [[nodiscard]] bool fold_mode() const { return spill_ != nullptr; }
  void fold_user(trace::UserId user) override;

  /// Fold a shard ledger's accounts and per-user totals into this one. The
  /// shard's users must be disjoint from this ledger's.
  void merge(const EnergyLedger& shard);

  // CheckpointableSink: serializes the live per-user slabs (only accounts
  // with traffic) with doubles as raw bits; restore after on_study_begin
  // rebuilds a bit-identical ledger.
  void save_state(ckpt::ByteWriter& out) const override;
  [[nodiscard]] util::Status restore_state(ckpt::ByteReader& in) override;

  [[nodiscard]] const trace::StudyMeta& meta() const { return meta_; }

  /// Typed iteration over every RESIDENT (user, app) account with traffic,
  /// user-major and app-ascending. Yields const AppUserAccount& — the
  /// user/app pair is on the account itself, no packed-key unpacking
  /// anywhere. Under fold mode the folded users' slabs are gone; detail
  /// consumers use AccountCursor (energy/account_cursor.h), which replays
  /// spilled rows first and then this view — the same sequence either way.
  class AccountView;
  [[nodiscard]] AccountView accounts() const;
  /// Number of resident (user, app) accounts with traffic — accounts().size().
  [[nodiscard]] std::size_t num_accounts() const { return num_accounts_; }
  /// Accounts with traffic including folded-and-spilled ones — the length of
  /// the AccountCursor sequence.
  [[nodiscard]] std::size_t total_accounts() const { return num_accounts_ + folded_accounts_; }

  /// RESIDENT account for one (user, app); nullptr when the pair has no
  /// traffic or its user was folded.
  [[nodiscard]] const AppUserAccount* find(trace::UserId user, trace::AppId app) const;

  /// User ids with any traffic (folded users included), ascending.
  [[nodiscard]] std::vector<trace::UserId> users() const;
  /// One user's accounts with traffic, app-ascending (empty when unknown).
  [[nodiscard]] std::vector<const AppUserAccount*> user_accounts(trace::UserId user) const;

  /// Sum of accounts for `app` across all users.
  [[nodiscard]] AppUserAccount app_total(trace::AppId app) const;
  /// All app ids with any traffic, ascending.
  [[nodiscard]] std::vector<trace::AppId> apps() const;

  /// Approximate resident footprint: per-user slabs (including each
  /// account's per-day cell vector).
  [[nodiscard]] obs::MemoryUse memory_use() const override;

  // Study-wide totals, folded from per-user partials in user-id order.
  [[nodiscard]] double total_joules() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t total_packets() const;
  /// Total joules across apps per process state (Fig. 3 "all apps" row).
  [[nodiscard]] std::array<double, trace::kNumProcessStates> state_totals() const;

 private:
  /// Running sums for one user — the unit that makes cross-user double
  /// totals mergeable without changing their value (see header comment).
  struct UserTotals {
    double joules = 0.0;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    std::array<double, trace::kNumProcessStates> state_joules{};
  };

  /// One user's slab: running totals plus a dense per-app account array.
  struct UserState {
    UserTotals totals;
    std::vector<AppUserAccount> apps;  ///< indexed by AppId; days empty = no traffic
  };

  /// The user's slab, allocated on first touch (apps pre-sized to the
  /// StudyMeta hint; grown on demand for out-of-hint ids).
  UserState& user_state(trace::UserId user);
  /// The (user, app) account inside `state`, initialized on first touch.
  AppUserAccount& account(UserState& state, trace::UserId user, trace::AppId app);

  /// Collapse one user's slab into the folded aggregates (no spill, no
  /// release bookkeeping beyond the counters).
  void fold_slab_totals(const UserState& state);
  /// Encode the slab's live accounts as the "ledger" section payload — the
  /// decode mirror is decode_ledger_section (energy/account_cursor.h).
  void encode_slab(const UserState& state, ckpt::ByteWriter& out) const;

  trace::StudyMeta meta_;
  std::size_t num_days_ = 0;
  std::uint32_t num_apps_hint_ = 0;
  std::size_t num_accounts_ = 0;
  /// Dense per-user slabs, indexed by UserId; null until the user has traffic.
  std::vector<std::unique_ptr<UserState>> users_;

  // -- fold-and-release state (all zero/empty outside fold mode) ------------
  AccountSpill* spill_ = nullptr;       ///< non-owning; armed by the engine
  std::uint64_t spilled_self_ = 0;      ///< bytes this ledger spilled
  std::size_t folded_accounts_ = 0;     ///< live accounts released by folds
  UserTotals folded_totals_;            ///< grand totals over folded users
  std::vector<AppUserAccount> folded_apps_;   ///< per-app totals, days empty
  std::vector<trace::UserId> folded_users_;   ///< folded users with traffic

 public:
  /// Forward iterator over live accounts: user-major, app-ascending.
  class AccountIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = AppUserAccount;
    using difference_type = std::ptrdiff_t;
    using pointer = const AppUserAccount*;
    using reference = const AppUserAccount&;

    AccountIterator() = default;
    AccountIterator(const std::vector<std::unique_ptr<UserState>>* users, std::size_t user,
                    std::size_t app)
        : users_(users), user_(user), app_(app) {
      advance_to_live();
    }

    reference operator*() const { return (*users_)[user_]->apps[app_]; }
    pointer operator->() const { return &**this; }
    AccountIterator& operator++() {
      ++app_;
      advance_to_live();
      return *this;
    }
    AccountIterator operator++(int) {
      AccountIterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const AccountIterator& a, const AccountIterator& b) {
      return a.user_ == b.user_ && a.app_ == b.app_;
    }
    friend bool operator!=(const AccountIterator& a, const AccountIterator& b) {
      return !(a == b);
    }

   private:
    void advance_to_live() {
      if (users_ == nullptr) return;
      for (; user_ < users_->size(); ++user_, app_ = 0) {
        const UserState* state = (*users_)[user_].get();
        if (state == nullptr) continue;
        for (; app_ < state->apps.size(); ++app_) {
          if (state->apps[app_].packets != 0) return;
        }
      }
      app_ = 0;  // one canonical end(): (users_.size(), 0)
    }

    const std::vector<std::unique_ptr<UserState>>* users_ = nullptr;
    std::size_t user_ = 0;
    std::size_t app_ = 0;
  };

  class AccountView {
   public:
    AccountView(const std::vector<std::unique_ptr<UserState>>* users, std::size_t count)
        : users_(users), count_(count) {}
    [[nodiscard]] AccountIterator begin() const { return {users_, 0, 0}; }
    [[nodiscard]] AccountIterator end() const { return {users_, users_->size(), 0}; }
    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] bool empty() const { return count_ == 0; }

   private:
    const std::vector<std::unique_ptr<UserState>>* users_;
    std::size_t count_;
  };
};

inline EnergyLedger::AccountView EnergyLedger::accounts() const {
  return AccountView{&users_, num_accounts_};
}

}  // namespace wildenergy::energy
