#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace wildenergy {

std::string format_time(TimePoint t) {
  const std::int64_t total_ms = t.us / 1000;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t total_s = total_ms / 1000;
  const std::int64_t s = total_s % 60;
  const std::int64_t m = (total_s / 60) % 60;
  const std::int64_t h = (total_s / 3600) % 24;
  const std::int64_t d = total_s / 86400;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lldd %02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(d), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

std::string format_duration(Duration d) {
  const double s = std::abs(d.seconds());
  char buf[32];
  if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", d.seconds() * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", d.seconds());
  } else if (s < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fm", d.seconds() / 60.0);
  } else if (s < 2.0 * 86400.0) {
    std::snprintf(buf, sizeof buf, "%.1fh", d.seconds() / 3600.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fd", d.seconds() / 86400.0);
  }
  return buf;
}

}  // namespace wildenergy
