// Scenario sweep bench (DESIGN.md §10): simulate once, replay many.
//
// The what-if table of the paper's §5 evaluates K policy variants over the
// SAME canonical trace. This bench measures both ways to get it:
//  1. K independent single-thread StudyPipeline runs — each pays trace
//     generation again for byte-identical events;
//  2. one core::SweepEngine — capture the generator into a columnar
//     trace::TraceStore once, replay the cached columns K times — at one
//     thread (the apples-to-apples comparison) and at four.
//
// Emits WILDENERGY_BENCH_JSON records (bench_util.h) named
// "sweep_scenarios/..."; the sweep records carry the store footprint and
// the speedup over the K independent runs in extra fields.
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/policy.h"
#include "core/sweep.h"
#include "obs/stopwatch.h"
#include "sim/generator.h"
#include "util/table.h"

#include "bench_util.h"

namespace {

using namespace wildenergy;

struct SpecEntry {
  std::string name;
  core::PolicyFactory policy;  ///< empty = baseline
};

std::vector<SpecEntry> scenario_specs() {
  std::vector<SpecEntry> specs;
  specs.push_back({"baseline", {}});
  for (const double n : {1.0, 2.0, 3.0, 5.0, 7.0, 14.0}) {
    specs.push_back({"kill-" + std::to_string(static_cast<int>(n)) + "d",
                     [n](trace::TraceSink* d) {
                       return std::make_unique<core::KillAfterIdlePolicy>(d, days(n));
                     }});
  }
  specs.push_back(
      {"doze", [](trace::TraceSink* d) { return std::make_unique<core::DozeLikePolicy>(d); }});
  return specs;
}

}  // namespace

int main() {
  const sim::StudyConfig config = benchutil::config_from_env(/*default_days=*/200);
  const auto specs = scenario_specs();
  benchutil::print_header("scenario sweep: K independent runs vs simulate-once replay", config);

  // -- K independent pipelines, each regenerating the study from scratch.
  TextTable independent({"scenario", "wall ms", "energy kJ"});
  double independent_total_ms = 0.0;
  std::uint64_t independent_packets = 0;
  double independent_joules = 0.0;
  for (const auto& spec : specs) {
    sim::StudyGenerator generator{config};
    core::StudyPipeline pipeline{&generator};
    if (spec.policy) pipeline.set_policy(spec.policy);
    const obs::Stopwatch watch;
    const auto stats = pipeline.run();
    const double wall_ms = watch.elapsed_ms();
    if (!stats.ok()) {
      std::cerr << "independent run failed: " << stats.status() << "\n";
      return 1;
    }
    independent_total_ms += wall_ms;
    independent_packets += stats->packets;
    independent_joules += stats->joules;
    independent.add_row({spec.name, fmt(wall_ms, 1), fmt(stats->joules / 1e3, 1)});
  }
  independent.add_row({"TOTAL (" + std::to_string(specs.size()) + " runs)",
                       fmt(independent_total_ms, 1), fmt(independent_joules / 1e3, 1)});
  independent.print(std::cout);
  benchutil::report_perf("sweep_scenarios/independent_runs", config, independent_total_ms,
                         independent_packets, independent_joules, /*threads=*/1,
                         /*speedup=*/1.0,
                         "\"scenarios\":" + std::to_string(specs.size()));

  // -- One sweep engine per thread count: capture once, replay K scenarios.
  for (const unsigned threads : {1u, 4u}) {
    core::SweepOptions options;
    options.num_threads = threads;
    sim::StudyGenerator generator{config};
    core::SweepEngine sweep{&generator, options};
    for (const auto& spec : specs) {
      core::Scenario scenario;
      scenario.name = spec.name;
      scenario.policy = spec.policy;
      sweep.add_scenario(std::move(scenario));
    }
    const auto stats = sweep.run();
    if (!stats.ok()) {
      std::cerr << "sweep failed: " << stats.status() << "\n";
      return 1;
    }
    const double speedup = stats->wall_ms > 0.0 ? independent_total_ms / stats->wall_ms : 0.0;
    std::cout << "\nsweep (" << threads << " thread" << (threads > 1 ? "s" : "") << "): "
              << fmt(stats->wall_ms, 1) << " ms for " << specs.size() << " scenarios — "
              << fmt(speedup, 2) << "x vs independent runs; store: "
              << sweep.store().event_count() << " events, "
              << fmt(static_cast<double>(sweep.store().memory_use().resident_bytes) / 1e6, 1) << " MB\n";
    benchutil::report_perf("sweep_scenarios/sweep_" + std::to_string(threads) + "thread",
                           config, stats->wall_ms, stats->packets, stats->joules, threads,
                           speedup,
                           "\"scenarios\":" + std::to_string(specs.size()) +
                               ",\"store_bytes\":" + std::to_string(sweep.store().memory_use().resident_bytes) +
                               ",\"store_events\":" + std::to_string(sweep.store().event_count()));
  }
  return 0;
}
