#include "analysis/figures.h"

#include <algorithm>
#include <map>

#include "energy/account_cursor.h"

namespace wildenergy::analysis {

std::vector<PopularityEntry> top10_popularity(const energy::EnergyLedger& ledger,
                                              std::uint32_t min_users, std::size_t top_n,
                                              util::Status* status) {
  // Per user: rank apps by bytes, take the top N. The cursor hands each
  // user's accounts together whether they are resident or spilled.
  std::map<trace::AppId, std::uint32_t> counts;
  util::Status st = energy::for_each_user_accounts(
      ledger, [&](trace::UserId, std::span<const energy::AppUserAccount> accounts) {
        std::vector<const energy::AppUserAccount*> ranked;
        ranked.reserve(accounts.size());
        for (const auto& acc : accounts) ranked.push_back(&acc);
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto* a, const auto* b) { return a->bytes > b->bytes; });
        const std::size_t n = std::min(top_n, ranked.size());
        for (std::size_t i = 0; i < n; ++i) counts[ranked[i]->app]++;
      });
  if (status != nullptr) status->update(st);

  std::vector<PopularityEntry> out;
  for (const auto& [app, count] : counts) {
    if (count >= min_users) out.push_back({app, count});
  }
  std::sort(out.begin(), out.end(), [](const PopularityEntry& a, const PopularityEntry& b) {
    return a.users_with_app_in_top10 != b.users_with_app_in_top10
               ? a.users_with_app_in_top10 > b.users_with_app_in_top10
               : a.app < b.app;
  });
  return out;
}

namespace {
std::vector<ConsumerEntry> all_consumers(const energy::EnergyLedger& ledger) {
  std::vector<ConsumerEntry> out;
  for (trace::AppId app : ledger.apps()) {
    const auto total = ledger.app_total(app);
    out.push_back({app, total.bytes, total.joules});
  }
  return out;
}
}  // namespace

std::vector<ConsumerEntry> top_consumers_by_data(const energy::EnergyLedger& ledger,
                                                 std::size_t top_n) {
  auto out = all_consumers(ledger);
  std::sort(out.begin(), out.end(),
            [](const ConsumerEntry& a, const ConsumerEntry& b) { return a.bytes > b.bytes; });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

std::vector<ConsumerEntry> top_consumers_by_energy(const energy::EnergyLedger& ledger,
                                                   std::size_t top_n) {
  auto out = all_consumers(ledger);
  std::sort(out.begin(), out.end(),
            [](const ConsumerEntry& a, const ConsumerEntry& b) { return a.joules > b.joules; });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

namespace {
StateBreakdown breakdown_from(const energy::AppUserAccount& acc) {
  StateBreakdown out;
  out.app = acc.app;
  out.total_joules = acc.joules;
  if (acc.joules > 0.0) {
    for (std::size_t s = 0; s < trace::kNumProcessStates; ++s) {
      out.fraction[s] = acc.state_joules[s] / acc.joules;
    }
  }
  return out;
}
}  // namespace

StateBreakdown state_breakdown(const energy::EnergyLedger& ledger, trace::AppId app) {
  return breakdown_from(ledger.app_total(app));
}

StateBreakdown overall_state_breakdown(const energy::EnergyLedger& ledger) {
  energy::AppUserAccount total;
  total.app = trace::kNoApp;
  total.joules = ledger.total_joules();
  total.state_joules = ledger.state_totals();
  return breakdown_from(total);
}

}  // namespace wildenergy::analysis
