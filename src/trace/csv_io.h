// CSV serialization of trace streams.
//
// Lets users persist synthetic traces, re-analyze external traces, and
// round-trip data between tools. One line per event:
//   M,<num_users>,<num_apps>,<begin_us>,<end_us>          (study meta, once)
//   U,<user>                                              (user begin)
//   P,<time_us>,<user>,<app>,<flow>,<bytes>,<dir>,<iface>,<state>,<joules>
//   T,<time_us>,<user>,<app>,<from_state>,<to_state>
//   V,<user>                                              (user end)
//   E                                                     (study end)
// Directions are "up"/"down"; interfaces "cell"/"wifi"; states use
// trace::to_string spellings. The <app> field is a numeric AppId; when
// ReadOptions::app_resolver is set (e.g. AppCatalog::find), a non-numeric
// field is resolved as an app name in O(1).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/read_policy.h"
#include "trace/sink.h"
#include "trace/trace_source.h"
#include "util/status.h"

namespace wildenergy::trace {

/// A TraceSink that writes the stream as CSV lines.
class CsvTraceWriter final : public TraceSink {
 public:
  explicit CsvTraceWriter(std::ostream& os) : os_(os) {}

  void on_study_begin(const StudyMeta& meta) override;
  void on_user_begin(UserId user) override;
  void on_packet(const PacketRecord& packet) override;
  void on_transition(const StateTransition& transition) override;
  void on_user_end(UserId user) override;
  void on_study_end() override;

 private:
  std::ostream& os_;
};

/// Result of replaying a CSV stream into a sink. Error messages carry the
/// 1-based line number, the offending field index, and a truncated echo of
/// the line.
struct CsvReadResult {
  util::Status status;
  std::uint64_t lines = 0;            ///< lines read (including skipped ones)
  std::uint64_t records_dropped = 0;  ///< malformed lines skipped (lenient policies)
  std::uint64_t records_repaired = 0; ///< lines salvaged under kBestEffort
  bool truncated = false;  ///< kBestEffort: stream ended without the E record
  std::vector<QuarantinedRecord> quarantine;  ///< first few rejects, verbatim

  [[nodiscard]] bool ok() const { return status.ok(); }
  [[nodiscard]] const std::string& error() const { return status.message(); }
};

/// Parse a CSV trace and replay it into `sink` (I: validate inputs at the
/// boundary). Under ReadPolicy::kStrict the first malformed line is fatal;
/// the lenient policies skip-and-count it (see trace/read_policy.h). Drops
/// and repairs are also counted in obs::MetricsRegistry::current() under
/// "ingest.records_dropped" / "ingest.records_repaired".
[[nodiscard]] CsvReadResult read_csv_trace(std::istream& is, TraceSink& sink,
                                           const ReadOptions& options = {});

/// TraceSource over a CSV stream: the reader behind StudyPipeline / CLI
/// --replay, lifted onto the one producer API. Forward-only — no per-user
/// random access — so the sharded engines run it through their serial path.
/// A second emit() rewinds seekable streams and fails cleanly on pipes.
class CsvTraceSource final : public TraceSource {
 public:
  /// `options.batch_size` is overridden per emit() by the caller's
  /// batch_size; the other ReadOptions fields (policy, quarantine cap) stick.
  explicit CsvTraceSource(std::istream& is, ReadOptions options = {})
      : is_(is), options_(options) {}

  util::Status emit(TraceSink& sink, std::size_t batch_size) override;
  /// Zero-valued until the first emit() has passed the header line.
  [[nodiscard]] StudyMeta meta() const override { return meta_; }

  /// Degradation detail of the last emit() (drops, repairs, quarantine) in
  /// the format-independent shape shared with the binary reader.
  [[nodiscard]] const ReadSummary& summary() const { return summary_; }

 private:
  std::istream& is_;
  ReadOptions options_;
  StudyMeta meta_{};
  ReadSummary summary_;
  bool consumed_ = false;
};

}  // namespace wildenergy::trace
