// Figure 5: "Duration for which traffic continues to be sent/received after
// the app is sent to the background. Each data point represents one
// transition to the background."
//
// Paper shape (for Chrome): most transitions are followed by a few minutes
// of persisting traffic, but the distribution is heavy-tailed — "in some
// cases background traffic flows persist for more than a day!" Firefox and
// the stock browser, which block background tabs, show no such tail.
#include <iostream>

#include "analysis/persistence.h"
#include "core/pipeline.h"
#include "sim/generator.h"
#include "util/table.h"

#include "bench_util.h"

int main() {
  using namespace wildenergy;
  const sim::StudyConfig cfg = benchutil::config_from_env();
  benchutil::print_header("Figure 5: traffic persistence after fg->bg transitions", cfg);

  sim::StudyGenerator generator{cfg};
  core::StudyPipeline pipeline{&generator};
  analysis::PersistenceAnalysis persistence;
  pipeline.add_analysis(&persistence);
  const auto run_stats = pipeline.run();
  if (!run_stats.ok()) return 1;

  const char* browsers[] = {"Chrome", "Firefox", "Browser"};
  for (const char* name : browsers) {
    const trace::AppId id = generator.catalog().find(name);
    if (id == trace::kNoApp) continue;
    auto& dist = persistence.durations(id);
    if (dist.count() == 0) continue;

    std::cout << "-- " << name << " (" << dist.count() << " transitions) --\n";
    TextTable table({"percentile", "persistence"});
    for (double q : {0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
      table.add_row({fmt(100 * q, 1) + "%", format_duration(sec(dist.percentile(q)))});
    }
    table.add_row({"max", format_duration(sec(dist.percentile(1.0)))});
    table.print(std::cout);
    std::cout << "transitions with traffic persisting > 1 min:  "
              << fmt(100 * persistence.fraction_persisting_longer_than(id, minutes(1.0)), 1)
              << "%\n"
              << "transitions with traffic persisting > 1 hour: "
              << fmt(100 * persistence.fraction_persisting_longer_than(id, hours(1.0)), 2)
              << "%\n"
              << "transitions with traffic persisting > 1 day:  "
              << fmt(100 * persistence.fraction_persisting_longer_than(id, days(1.0)), 3)
              << "%  (paper: some Chrome flows persist >1 day)\n\n";
  }
  benchutil::report_perf("fig5_persistence", cfg, run_stats.value());
  return 0;
}
