#include "appmodel/catalog.h"

#include <cassert>

#include "util/rng.h"

namespace wildenergy::appmodel {

trace::AppId AppCatalog::add(AppProfile profile) {
  assert(index_.find(profile.name) == index_.end() && "duplicate app name");
  const auto id = static_cast<trace::AppId>(profiles_.size());
  index_.emplace(profile.name, id);
  profiles_.push_back(std::move(profile));
  return id;
}

trace::AppId AppCatalog::find(std::string_view name) const {
  const auto it = index_.find(name);  // heterogeneous: no temporary string
  return it == index_.end() ? trace::kNoApp : it->second;
}

namespace {

// ---------------------------------------------------------------------------
// Social media (Table 1): periodic server polls regardless of user activity.
// ---------------------------------------------------------------------------

AppProfile weibo() {
  AppProfile app;
  app.name = "Weibo";
  app.category = AppCategory::kSocialMedia;
  app.popularity = 0.8;
  app.install_probability = 0.15;  // a few devoted users in the study
  app.foreground = {.sessions_per_day = 1.5,
                    .session_minutes_mean = 4.0,
                    .session_minutes_sigma = 0.8,
                    .burst_interval = sec(12.0),
                    .burst_bytes_down = 120'000,
                    .burst_bytes_up = 4'000};
  // "Frequent, nearly-empty requests" every 5-10 min (Table 1). Forced
  // closes make the realized flow count fall short of 288/day.
  PeriodicSpec poll;
  poll.period = minutes(7.0);
  poll.period_jitter = 0.35;  // spreads over the 5-10 min band
  poll.bytes_down = std::uint64_t{2'500};
  poll.bytes_up = std::uint64_t{900};
  poll.bursts_per_update = 3;
  poll.state = trace::ProcessState::kService;
  poll.forced_close_mean_days = 0.3;
  poll.restart_mean_hours = 5.0;
  app.periodic.push_back(poll);
  app.flush = FlushSpec{.flush_probability = 0.7,
                        .bytes_down = 30'000,
                        .bytes_up = 20'000,
                        .bursts = 3,
                        .mean_spacing = sec(8.0)};
  return app;
}

AppProfile twitter() {
  AppProfile app;
  app.name = "Twitter";
  app.category = AppCategory::kSocialMedia;
  app.popularity = 2.0;
  app.install_probability = 0.55;
  app.foreground = {.sessions_per_day = 4.0,
                    .session_minutes_mean = 3.0,
                    .session_minutes_sigma = 0.9,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 60'000,
                    .burst_bytes_up = 3'000};
  // Hourly batched sync pulling a substantial timeline chunk: few joules per
  // byte — the efficient contrast to Weibo.
  PeriodicSpec sync;
  sync.period = hours(1.0);
  sync.period_jitter = 0.15;
  sync.bytes_down = std::uint64_t{2'000'000};
  sync.bytes_up = std::uint64_t{40'000};
  sync.bursts_per_update = 2;
  sync.state = trace::ProcessState::kService;
  sync.forced_close_mean_days = 4.0;
  app.periodic.push_back(sync);
  app.flush = FlushSpec{.flush_probability = 0.8,
                        .bytes_down = 40'000,
                        .bytes_up = 25'000,
                        .bursts = 2,
                        .mean_spacing = sec(6.0)};
  return app;
}

AppProfile facebook() {
  AppProfile app;
  app.name = "Facebook";
  app.category = AppCategory::kSocialMedia;
  app.popularity = 5.0;
  app.install_probability = 0.95;  // popular among all users (Fig. 1)
  app.foreground = {.sessions_per_day = 6.0,
                    .session_minutes_mean = 3.0,
                    .session_minutes_sigma = 1.0,
                    .burst_interval = sec(14.0),
                    .burst_bytes_down = 90'000,
                    .burst_bytes_up = 5'000};
  // "decreasing its background update frequency from 5 minutes to 1 hour"
  // over the course of the study (§4.2). Day 330 ~ the observed switch.
  PeriodicSpec sync;
  sync.period = Schedule<Duration>{minutes(5.0)}.then(330, hours(1.0));
  sync.period_jitter = 0.2;
  sync.bytes_down = std::uint64_t{600'000};
  sync.bytes_up = std::uint64_t{30'000};
  sync.bursts_per_update = 2;
  sync.state = trace::ProcessState::kService;
  sync.forced_close_mean_days = 0.4;  // killed within hours on a 1 GB device
  sync.restart_mean_hours = 8.0;
  app.periodic.push_back(sync);
  app.flush = FlushSpec{.flush_probability = 0.85,
                        .bytes_down = 60'000,
                        .bytes_up = 40'000,
                        .bursts = 3,
                        .mean_spacing = sec(7.0)};
  return app;
}

AppProfile google_plus() {
  AppProfile app;
  app.name = "Plus";
  app.category = AppCategory::kSocialMedia;
  app.popularity = 0.3;  // "Rarely actively used but installed by default"
  app.install_probability = 0.9;
  app.foreground = {.sessions_per_day = 0.15,
                    .session_minutes_mean = 2.0,
                    .session_minutes_sigma = 0.7,
                    .burst_interval = sec(12.0),
                    .burst_bytes_down = 120'000,
                    .burst_bytes_up = 4'000};
  PeriodicSpec sync;
  sync.period = hours(1.0);
  sync.period_jitter = 0.15;
  sync.bytes_down = std::uint64_t{1'100'000};
  sync.bytes_up = std::uint64_t{25'000};
  sync.bursts_per_update = 2;
  sync.state = trace::ProcessState::kService;
  sync.forced_close_mean_days = 5.0;
  app.periodic.push_back(sync);
  return app;
}

// ---------------------------------------------------------------------------
// Periodic update services (Table 1).
// ---------------------------------------------------------------------------

AppProfile samsung_push() {
  AppProfile app;
  app.name = "Samsung Push";
  app.category = AppCategory::kPushService;
  app.popularity = 0.8;  // the push panel does get opened occasionally
  app.install_probability = 0.8;  // preloaded on the study's Galaxy S III
  app.foreground.sessions_per_day = 0.5;
  // "15 min to 15 h": a keepalive whose period wanders wildly. Bursts are
  // spread out within an update, so one update spans several radio wakeups
  // (paper: 140 J per 2.2 MB flow).
  PeriodicSpec keepalive;
  keepalive.period = minutes(40.0);
  keepalive.period_jitter = 1.5;  // lognormal-like spread: 15 min .. 15 h
  keepalive.bytes_down = std::uint64_t{1'200'000};
  keepalive.bytes_up = std::uint64_t{1'000'000};
  keepalive.bursts_per_update = 6;
  keepalive.intra_update_gap = sec(13.0);  // past the LTE tail: wakeup per burst
  keepalive.user_visible_probability = 0.05;
  keepalive.state = trace::ProcessState::kService;
  keepalive.forced_close_mean_days = 2.0;   // pauses for stretches...
  keepalive.restart_mean_hours = 40.0;      // ...until an alarm revives it
  app.periodic.push_back(keepalive);
  return app;
}

AppProfile urbanairship() {
  AppProfile app;
  app.name = "Urbanairship";
  app.category = AppCategory::kPushService;
  app.popularity = 0.1;
  app.install_probability = 0.6;  // "Library; period varies by app"
  app.foreground.sessions_per_day = 0.0;  // pure library, no UI
  // The in-lab finding: "nearly empty HTTP requests every five minutes for
  // hours, but only provided one user-visible notification".
  PeriodicSpec poll;
  poll.period = minutes(12.0);
  poll.period_jitter = 0.9;  // 5-30 min across embedding apps
  poll.bytes_down = std::uint64_t{1'500};
  poll.bytes_up = std::uint64_t{700};
  poll.bursts_per_update = 2;
  poll.state = trace::ProcessState::kService;
  poll.forced_close_mean_days = 0.5;
  poll.restart_mean_hours = 6.0;
  poll.user_visible_probability = 0.02;  // "only one user-visible notification"
  app.periodic.push_back(poll);
  return app;
}

AppProfile maps() {
  AppProfile app;
  app.name = "Maps";
  app.category = AppCategory::kMaps;
  app.popularity = 1.5;
  app.install_probability = 0.95;
  app.foreground = {.sessions_per_day = 1.2,
                    .session_minutes_mean = 5.0,
                    .session_minutes_sigma = 0.8,
                    .burst_interval = sec(6.0),
                    .burst_bytes_down = 200'000,  // map tiles
                    .burst_bytes_up = 5'000};
  // Background location service: 20-30 min, "decreased to a few hours near
  // the end" (Table 1). It consumed up to 90% of the app's energy early on.
  PeriodicSpec location;
  location.period = Schedule<Duration>{minutes(28.0)}.then(520, hours(3.0));
  location.period_jitter = 0.25;
  location.bytes_down = std::uint64_t{30'000};
  location.bytes_up = std::uint64_t{70'000};  // uploads anonymized fixes
  location.bursts_per_update = 2;
  location.state = trace::ProcessState::kService;
  location.forced_close_mean_days = 0.5;
  location.restart_mean_hours = 10.0;
  app.periodic.push_back(location);
  return app;
}

AppProfile gmail() {
  AppProfile app;
  app.name = "GMail";
  app.category = AppCategory::kMail;
  app.popularity = 2.5;
  app.install_probability = 1.0;
  app.foreground = {.sessions_per_day = 5.0,
                    .session_minutes_mean = 1.5,
                    .session_minutes_sigma = 0.7,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 60'000,
                    .burst_bytes_up = 12'000};
  // "30 min in 2012; updates appear to become discontinuous" — the period
  // lengthens and the jitter grows until arrivals look on-demand.
  PeriodicSpec sync;
  sync.period = Schedule<Duration>{minutes(30.0)}.then(350, hours(2.0));
  sync.period_jitter = 0.2;
  sync.bytes_down = std::uint64_t{500'000};
  sync.bytes_up = std::uint64_t{60'000};
  sync.bursts_per_update = 2;
  sync.state = trace::ProcessState::kService;
  sync.forced_close_mean_days = 0.0;
  app.periodic.push_back(sync);
  return app;
}

AppProfile default_email() {
  AppProfile app;
  app.name = "Email";
  app.category = AppCategory::kMail;
  app.popularity = 1.2;
  app.install_probability = 0.85;
  app.foreground = {.sessions_per_day = 2.0,
                    .session_minutes_mean = 1.5,
                    .session_minutes_sigma = 0.6,
                    .burst_interval = sec(12.0),
                    .burst_bytes_down = 40'000,
                    .burst_bytes_up = 8'000};
  // Fig. 2 contrast: "the default email app consumes network energy
  // disproportionate to its data usage" — tight IMAP-style poll, tiny bytes.
  PeriodicSpec poll;
  poll.period = minutes(10.0);
  poll.period_jitter = 0.1;
  poll.bytes_down = std::uint64_t{4'000};
  poll.bytes_up = std::uint64_t{1'500};
  poll.bursts_per_update = 2;
  poll.state = trace::ProcessState::kService;
  poll.forced_close_mean_days = 1.5;
  poll.restart_mean_hours = 3.0;  // mail sync comes back quickly
  app.periodic.push_back(poll);
  return app;
}

// ---------------------------------------------------------------------------
// Widgets (Table 1): home-screen apps whose whole job is periodic refresh.
// ---------------------------------------------------------------------------

AppProfile go_weather_widget() {
  AppProfile app;
  app.name = "Go Weather widget";
  app.category = AppCategory::kWidget;
  app.popularity = 0.15;
  app.install_probability = 0.25;
  app.foreground.sessions_per_day = 0.0;  // widgets have no fg sessions
  PeriodicSpec refresh;
  refresh.period = minutes(5.0);
  refresh.period_jitter = 0.1;
  refresh.bytes_down = std::uint64_t{110'000};
  refresh.bytes_up = std::uint64_t{2'000};
  refresh.bursts_per_update = 2;
  refresh.state = trace::ProcessState::kService;
  refresh.forced_close_mean_days = 0.12;  // refresh runs a few hours at a time
  refresh.restart_mean_hours = 14.0;
  app.periodic.push_back(refresh);
  return app;
}

AppProfile go_weather_app() {
  AppProfile app;
  app.name = "Go Weather";
  app.category = AppCategory::kWidget;
  app.popularity = 0.3;
  app.install_probability = 0.25;
  app.foreground = {.sessions_per_day = 0.8,
                    .session_minutes_mean = 1.0,
                    .session_minutes_sigma = 0.5,
                    .burst_interval = sec(8.0),
                    .burst_bytes_down = 150'000,
                    .burst_bytes_up = 2'000};
  // "5 min => 40 min: switched push notification approaches" (Table 1).
  PeriodicSpec refresh;
  refresh.period = Schedule<Duration>{minutes(5.0)}.then(280, minutes(40.0));
  refresh.period_jitter = 0.15;
  refresh.bytes_down = std::uint64_t{380'000};
  refresh.bytes_up = std::uint64_t{4'000};
  refresh.bursts_per_update = 2;
  refresh.state = trace::ProcessState::kService;
  refresh.forced_close_mean_days = 0.1;
  refresh.restart_mean_hours = 18.0;
  app.periodic.push_back(refresh);
  return app;
}

AppProfile accuweather_app() {
  AppProfile app;
  app.name = "Accuweather";
  app.category = AppCategory::kWidget;
  app.popularity = 0.4;
  app.install_probability = 0.3;
  app.foreground = {.sessions_per_day = 1.0,
                    .session_minutes_mean = 1.0,
                    .session_minutes_sigma = 0.5,
                    .burst_interval = sec(8.0),
                    .burst_bytes_down = 200'000,
                    .burst_bytes_up = 2'000};
  // "7 min but high variation" — far less efficient than its own widget.
  PeriodicSpec refresh;
  refresh.period = minutes(7.0);
  refresh.period_jitter = 0.8;
  refresh.bytes_down = std::uint64_t{210'000};
  refresh.bytes_up = std::uint64_t{3'000};
  refresh.bursts_per_update = 3;
  refresh.state = trace::ProcessState::kService;
  refresh.forced_close_mean_days = 0.4;
  refresh.restart_mean_hours = 7.0;
  app.periodic.push_back(refresh);
  return app;
}

AppProfile accuweather_widget() {
  AppProfile app;
  app.name = "Accuweather widget";
  app.category = AppCategory::kWidget;
  app.popularity = 0.15;
  app.install_probability = 0.3;
  app.foreground.sessions_per_day = 0.0;
  // "~3 h; more efficient than the app" — batched refresh, order of
  // magnitude lower J/B than Go Weather widget's 5-minute drip.
  PeriodicSpec refresh;
  refresh.period = hours(3.0);
  refresh.period_jitter = 0.2;
  refresh.bytes_down = std::uint64_t{6'000'000};
  refresh.bytes_up = std::uint64_t{6'000};
  refresh.bursts_per_update = 2;
  refresh.state = trace::ProcessState::kService;
  refresh.forced_close_mean_days = 0.5;
  refresh.restart_mean_hours = 12.0;
  app.periodic.push_back(refresh);
  return app;
}

// ---------------------------------------------------------------------------
// Streaming & podcasts (Table 1).
// ---------------------------------------------------------------------------

AppProfile spotify() {
  AppProfile app;
  app.name = "Spotify";
  app.category = AppCategory::kStreaming;
  app.popularity = 0.6;
  app.install_probability = 0.25;
  app.foreground = {.sessions_per_day = 0.6,
                    .session_minutes_mean = 2.0,
                    .session_minutes_sigma = 0.6,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 120'000,
                    .burst_bytes_up = 3'000};
  MediaSpec listen;
  listen.listen_sessions_per_day = 0.5;
  listen.session_minutes_mean = 50.0;
  // "5 min => 40 min": away from continuous streaming toward batches.
  listen.chunk_period = Schedule<Duration>{minutes(5.0)}.then(300, minutes(40.0));
  listen.chunk_bytes = Schedule<std::uint64_t>{std::uint64_t{6'000'000}}.then(
      300, std::uint64_t{45'000'000});
  app.media = listen;
  return app;
}

AppProfile pandora() {
  AppProfile app;
  app.name = "Pandora";
  app.category = AppCategory::kStreaming;
  app.popularity = 0.5;
  app.install_probability = 0.2;
  app.foreground = {.sessions_per_day = 0.4,
                    .session_minutes_mean = 1.5,
                    .session_minutes_sigma = 0.6,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 90'000,
                    .burst_bytes_up = 3'000};
  MediaSpec listen;
  listen.listen_sessions_per_day = 0.1;
  listen.session_minutes_mean = 45.0;
  // "Previously every 1 min in 2012" => two-hour batches by the end.
  listen.chunk_period = Schedule<Duration>{minutes(1.0)}.then(250, hours(2.0));
  listen.chunk_bytes = Schedule<std::uint64_t>{std::uint64_t{900'000}}.then(
      250, std::uint64_t{60'000'000});
  app.media = listen;
  return app;
}

AppProfile pocketcasts() {
  AppProfile app;
  app.name = "Pocketcasts";
  app.category = AppCategory::kPodcast;
  app.popularity = 0.5;
  app.install_probability = 0.25;
  app.foreground = {.sessions_per_day = 0.5,
                    .session_minutes_mean = 1.5,
                    .session_minutes_sigma = 0.5,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 60'000,
                    .burst_bytes_up = 2'000};
  MediaSpec listen;
  listen.listen_sessions_per_day = 0.25;
  listen.session_minutes_mean = 45.0;
  // "downloads an entire podcast in one chunk" — the efficient strategy.
  listen.whole_file = true;
  listen.whole_file_bytes = 55'000'000;
  listen.chunk_period = hours(2.0);  // unused in whole-file mode
  app.media = listen;
  return app;
}

AppProfile podcastaddict() {
  AppProfile app;
  app.name = "Podcastaddict";
  app.category = AppCategory::kPodcast;
  app.popularity = 0.5;
  app.install_probability = 0.25;
  app.foreground = {.sessions_per_day = 0.5,
                    .session_minutes_mean = 1.5,
                    .session_minutes_sigma = 0.5,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 60'000,
                    .burst_bytes_up = 2'000};
  MediaSpec listen;
  listen.listen_sessions_per_day = 0.25;
  listen.session_minutes_mean = 45.0;
  // "downloads smaller chunks as needed" — saves data, costs energy (§4.2).
  listen.whole_file = false;
  listen.chunk_period = minutes(3.0);
  listen.chunk_bytes = std::uint64_t{7'000'000};
  app.media = listen;
  return app;
}

// ---------------------------------------------------------------------------
// Browsers (§4.1): the foreground-traffic-not-terminated case studies.
// ---------------------------------------------------------------------------

AppProfile chrome() {
  AppProfile app;
  app.name = "Chrome";
  app.category = AppCategory::kBrowser;
  app.popularity = 3.0;
  app.install_probability = 0.9;
  app.foreground = {.sessions_per_day = 5.0,
                    .session_minutes_mean = 4.0,
                    .session_minutes_sigma = 1.0,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 130'000,
                    .burst_bytes_up = 7'000};
  // Chrome lets pages keep polling when minimized: XHR timers, ads,
  // analytics. ~30% of its network energy ends up in the background (Fig. 3).
  LeakSpec leak;
  leak.leak_probability = 0.30;
  leak.poll_period = sec(30.0);
  leak.poll_period_sigma = 0.7;
  leak.poll_bytes_down = 5'000;
  leak.poll_bytes_up = 800;
  leak.duration_minutes_mu = 1.6;   // median ~5 min of persisting traffic
  leak.duration_minutes_sigma = 1.7;
  leak.pareto_tail_probability = 0.02;  // the >1 day monsters of Fig. 5
  leak.pareto_tail_alpha = 0.65;
  leak.egregious_probability = 0.03;    // the 2-second transit page
  leak.egregious_poll_period = sec(2.0);
  app.leak = leak;
  app.flush = FlushSpec{.flush_probability = 0.9,
                        .bytes_down = 120'000,
                        .bytes_up = 30'000,
                        .bursts = 3,
                        .mean_spacing = sec(6.0)};
  return app;
}

AppProfile browser_without_leak(std::string name, double install_probability,
                                double popularity) {
  AppProfile app;
  app.name = std::move(name);
  app.category = AppCategory::kBrowser;
  app.popularity = popularity;
  app.install_probability = install_probability;
  app.foreground = {.sessions_per_day = 3.0,
                    .session_minutes_mean = 4.0,
                    .session_minutes_sigma = 1.0,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 130'000,
                    .burst_bytes_up = 7'000};
  // "Neither [Firefox nor the default browser] allow data to be sent when
  // the app is in the background" — no LeakSpec, only a brief flush of
  // already-queued transfers.
  app.flush = FlushSpec{.flush_probability = 0.5,
                        .bytes_down = 60'000,
                        .bytes_up = 10'000,
                        .bursts = 1,
                        .mean_spacing = sec(4.0)};
  return app;
}

// ---------------------------------------------------------------------------
// System apps that top the Fig. 1/2 charts.
// ---------------------------------------------------------------------------

AppProfile media_server() {
  AppProfile app;
  app.name = "Media Server";
  app.category = AppCategory::kMediaPlayer;
  app.popularity = 4.0;
  app.install_probability = 1.0;  // built-in, delegated traffic (§3)
  app.foreground.sessions_per_day = 0.0;
  // Bulk media fetches delegated by other apps: big transfers, few joules
  // per byte — tops the data chart, not the energy chart (Fig. 2).
  MediaSpec play;
  play.listen_sessions_per_day = 1.3;
  play.session_minutes_mean = 35.0;
  play.chunk_period = minutes(2.0);
  play.chunk_bytes = std::uint64_t{3'500'000};
  play.delegated_service = true;
  app.media = play;
  return app;
}

AppProfile google_play() {
  AppProfile app;
  app.name = "Google Play";
  app.category = AppCategory::kSystem;
  app.popularity = 3.0;
  app.install_probability = 1.0;
  app.foreground = {.sessions_per_day = 0.8,
                    .session_minutes_mean = 3.0,
                    .session_minutes_sigma = 0.8,
                    .burst_interval = sec(8.0),
                    .burst_bytes_down = 400'000,
                    .burst_bytes_up = 5'000};
  // Nightly app auto-updates: rare, huge, efficient.
  PeriodicSpec updates;
  updates.period = hours(22.0);
  updates.period_jitter = 0.3;
  updates.bytes_down = std::uint64_t{60'000'000};
  updates.bytes_up = std::uint64_t{200'000};
  updates.bursts_per_update = 4;
  updates.state = trace::ProcessState::kBackground;
  updates.forced_close_mean_days = 0.0;
  app.periodic.push_back(updates);
  return app;
}

// ---------------------------------------------------------------------------
// Table 2 what-if candidates not already defined above.
// The paper's column heads are partially garbled in extraction ("P. S.",
// "Weib.", "Meso.", "ESP.", "4 com", "St. Weatter"); we map them to Samsung
// Push, Weibo, Messenger, ESPN, 4shared and Stock Weather — six apps that are
// rarely foregrounded yet keep generating background traffic. DESIGN.md notes
// the reconstruction.
// ---------------------------------------------------------------------------

AppProfile messenger() {
  AppProfile app;
  app.name = "Messenger";
  app.category = AppCategory::kSocialMedia;
  app.popularity = 2.0;
  app.install_probability = 0.5;
  app.foreground = {.sessions_per_day = 1.0,
                    .session_minutes_mean = 2.0,
                    .session_minutes_sigma = 0.8,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 50'000,
                    .burst_bytes_up = 20'000};
  PeriodicSpec keepalive;
  keepalive.period = minutes(15.0);
  keepalive.period_jitter = 0.3;
  keepalive.bytes_down = std::uint64_t{3'000};
  keepalive.bytes_up = std::uint64_t{1'200};
  keepalive.bursts_per_update = 2;
  keepalive.state = trace::ProcessState::kService;
  keepalive.forced_close_mean_days = 1.0;
  keepalive.restart_mean_hours = 20.0;
  app.periodic.push_back(keepalive);
  return app;
}

AppProfile espn() {
  AppProfile app;
  app.name = "ESPN";
  app.category = AppCategory::kNews;
  app.popularity = 3.0;
  app.install_probability = 0.35;
  app.foreground = {.sessions_per_day = 1.8,  // scores get checked often
                    .session_minutes_mean = 2.5,
                    .session_minutes_sigma = 0.8,
                    .burst_interval = sec(8.0),
                    .burst_bytes_down = 200'000,
                    .burst_bytes_up = 3'000};
  PeriodicSpec scores;
  scores.period = minutes(30.0);
  scores.period_jitter = 0.3;
  scores.bytes_down = std::uint64_t{150'000};
  scores.bytes_up = std::uint64_t{2'000};
  scores.bursts_per_update = 2;
  scores.state = trace::ProcessState::kBackground;
  scores.forced_close_mean_days = 1.0;
  scores.restart_on_foreground_only = true;
  app.periodic.push_back(scores);
  return app;
}

AppProfile fourshared() {
  AppProfile app;
  app.name = "4shared";
  app.category = AppCategory::kOther;
  app.popularity = 0.3;
  app.install_probability = 0.2;
  app.foreground = {.sessions_per_day = 0.5,
                    .session_minutes_mean = 4.0,
                    .session_minutes_sigma = 0.9,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 800'000,
                    .burst_bytes_up = 100'000};
  PeriodicSpec sync;
  sync.period = minutes(20.0);
  sync.period_jitter = 0.3;
  sync.bytes_down = std::uint64_t{40'000};
  sync.bytes_up = std::uint64_t{30'000};
  sync.bursts_per_update = 2;
  sync.state = trace::ProcessState::kBackground;
  sync.forced_close_mean_days = 2.5;
  sync.restart_mean_hours = 30.0;
  app.periodic.push_back(sync);
  return app;
}

AppProfile stock_weather() {
  AppProfile app;
  app.name = "Stock Weather";
  app.category = AppCategory::kWidget;
  app.popularity = 1.2;
  app.install_probability = 0.6;  // preloaded widget
  app.foreground.sessions_per_day = 0.8;
  PeriodicSpec refresh;
  refresh.period = minutes(30.0);
  refresh.period_jitter = 0.2;
  refresh.bytes_down = std::uint64_t{90'000};
  refresh.bytes_up = std::uint64_t{2'000};
  refresh.bursts_per_update = 2;
  refresh.state = trace::ProcessState::kService;
  refresh.forced_close_mean_days = 0.8;
  refresh.restart_mean_hours = 16.0;
  app.periodic.push_back(refresh);
  return app;
}

// Apps whose background timers reset on the fg->bg transition, producing the
// 5- and 10-minute spikes in Fig. 6.
AppProfile reset_phase_app(std::string name, double period_minutes, double install_probability) {
  AppProfile app;
  app.name = std::move(name);
  app.category = AppCategory::kNews;
  app.popularity = 1.0;
  app.install_probability = install_probability;
  app.foreground = {.sessions_per_day = 3.0,
                    .session_minutes_mean = 2.5,
                    .session_minutes_sigma = 0.8,
                    .burst_interval = sec(10.0),
                    .burst_bytes_down = 150'000,
                    .burst_bytes_up = 4'000};
  PeriodicSpec refresh;
  refresh.period = minutes(period_minutes);
  refresh.period_jitter = 0.02;  // tight: that is what makes the spike visible
  refresh.bytes_down = std::uint64_t{1'800'000};
  refresh.bytes_up = std::uint64_t{4'000};
  refresh.bursts_per_update = 2;
  refresh.state = trace::ProcessState::kService;
  refresh.phase = PeriodPhase::kResetOnBackground;
  refresh.forced_close_mean_days = 1.0;
  refresh.restart_mean_hours = 48.0;  // effectively: runs for hours after use
  app.periodic.push_back(refresh);
  app.flush = FlushSpec{.flush_probability = 0.8,
                        .bytes_down = 50'000,
                        .bytes_up = 20'000,
                        .bursts = 2,
                        .mean_spacing = sec(10.0)};
  return app;
}


// ---------------------------------------------------------------------------
// Additional named archetypes rounding out the population of popular 2012-14
// apps (Fig. 1's diverse top-10 lists). Parameters are plausible-period
// reconstructions, not paper measurements.
// ---------------------------------------------------------------------------

AppProfile youtube() {
  AppProfile app;
  app.name = "YouTube";
  app.category = AppCategory::kStreaming;
  app.popularity = 3.5;
  app.install_probability = 0.95;
  app.foreground = {.sessions_per_day = 1.0,
                    .session_minutes_mean = 5.0,
                    .session_minutes_sigma = 1.0,
                    .burst_interval = sec(5.0),  // progressive video chunks
                    .burst_bytes_down = 600'000,
                    .burst_bytes_up = 5'000};
  app.flush = FlushSpec{.flush_probability = 0.7,
                        .bytes_down = 150'000,  // prefetch completion
                        .bytes_up = 20'000,
                        .bursts = 2,
                        .mean_spacing = sec(6.0)};
  return app;
}

AppProfile instagram() {
  AppProfile app;
  app.name = "Instagram";
  app.category = AppCategory::kSocialMedia;
  app.popularity = 2.5;
  app.install_probability = 0.6;
  app.foreground = {.sessions_per_day = 5.0,
                    .session_minutes_mean = 2.5,
                    .session_minutes_sigma = 0.9,
                    .burst_interval = sec(6.0),
                    .burst_bytes_down = 110'000,  // image-heavy feed
                    .burst_bytes_up = 15'000};
  PeriodicSpec sync;
  sync.period = minutes(30.0);
  sync.period_jitter = 0.25;
  sync.bytes_down = std::uint64_t{120'000};
  sync.bytes_up = std::uint64_t{6'000};
  sync.state = trace::ProcessState::kService;
  sync.forced_close_mean_days = 1.0;
  app.periodic.push_back(sync);
  app.flush = FlushSpec{.flush_probability = 0.8,
                        .bytes_down = 40'000,
                        .bytes_up = 120'000,  // deferred photo uploads
                        .bursts = 2,
                        .mean_spacing = sec(9.0)};
  return app;
}

AppProfile whatsapp() {
  AppProfile app;
  app.name = "WhatsApp";
  app.category = AppCategory::kSocialMedia;
  app.popularity = 3.0;
  app.install_probability = 0.7;
  app.foreground = {.sessions_per_day = 9.0,
                    .session_minutes_mean = 1.2,
                    .session_minutes_sigma = 0.8,
                    .burst_interval = sec(8.0),
                    .burst_bytes_down = 25'000,
                    .burst_bytes_up = 15'000};
  // Long-lived TCP keepalive pings: tiny, frequent-ish, sticky service.
  PeriodicSpec keepalive;
  keepalive.period = minutes(14.0);
  keepalive.period_jitter = 0.15;
  keepalive.bytes_down = std::uint64_t{600};
  keepalive.bytes_up = std::uint64_t{400};
  keepalive.bursts_per_update = 1;
  keepalive.state = trace::ProcessState::kService;
  keepalive.forced_close_mean_days = 3.0;
  keepalive.restart_mean_hours = 0.5;  // reconnects almost immediately
  app.periodic.push_back(keepalive);
  return app;
}

AppProfile skype() {
  AppProfile app;
  app.name = "Skype";
  app.category = AppCategory::kSocialMedia;
  app.popularity = 1.0;
  app.install_probability = 0.45;
  app.foreground = {.sessions_per_day = 0.6,
                    .session_minutes_mean = 8.0,  // calls
                    .session_minutes_sigma = 1.0,
                    .burst_interval = sec(2.0),
                    .burst_bytes_down = 60'000,
                    .burst_bytes_up = 60'000};
  // The CoNEXT'13 "staying online while mobile" cost: presence keepalives.
  PeriodicSpec presence;
  presence.period = minutes(8.0);
  presence.period_jitter = 0.2;
  presence.bytes_down = std::uint64_t{2'000};
  presence.bytes_up = std::uint64_t{1'500};
  presence.bursts_per_update = 1;
  presence.state = trace::ProcessState::kService;
  presence.forced_close_mean_days = 1.5;
  presence.restart_mean_hours = 12.0;
  app.periodic.push_back(presence);
  return app;
}

AppProfile netflix() {
  AppProfile app;
  app.name = "Netflix";
  app.category = AppCategory::kStreaming;
  app.popularity = 1.2;
  app.install_probability = 0.4;
  app.foreground = {.sessions_per_day = 0.25,
                    .session_minutes_mean = 3.0,
                    .session_minutes_sigma = 0.7,
                    .burst_interval = sec(6.0),
                    .burst_bytes_down = 300'000,
                    .burst_bytes_up = 4'000};
  MediaSpec watch;  // video sessions, mostly on WiFi in reality; heavy here
  watch.listen_sessions_per_day = 0.15;
  watch.session_minutes_mean = 40.0;
  watch.chunk_period = minutes(1.5);
  watch.chunk_bytes = std::uint64_t{18'000'000};
  app.media = watch;
  return app;
}

AppProfile kindle() {
  AppProfile app;
  app.name = "Kindle";
  app.category = AppCategory::kOther;
  app.popularity = 0.8;
  app.install_probability = 0.35;
  app.foreground = {.sessions_per_day = 1.2,
                    .session_minutes_mean = 15.0,  // reading sessions
                    .session_minutes_sigma = 0.9,
                    .burst_interval = sec(120.0),  // page sync, rare
                    .burst_bytes_down = 15'000,
                    .burst_bytes_up = 2'000};
  PeriodicSpec sync;  // nightly book/periodical delivery
  sync.period = hours(20.0);
  sync.period_jitter = 0.3;
  sync.bytes_down = std::uint64_t{8'000'000};
  sync.bytes_up = std::uint64_t{10'000};
  sync.state = trace::ProcessState::kBackground;
  sync.forced_close_mean_days = 4.0;
  sync.restart_on_foreground_only = true;
  app.periodic.push_back(sync);
  return app;
}

AppProfile reddit_client() {
  AppProfile app;
  app.name = "RedditIsFun";
  app.category = AppCategory::kNews;
  app.popularity = 1.2;
  app.install_probability = 0.3;
  app.foreground = {.sessions_per_day = 6.0,
                    .session_minutes_mean = 4.0,
                    .session_minutes_sigma = 1.0,
                    .burst_interval = sec(7.0),
                    .burst_bytes_down = 90'000,
                    .burst_bytes_up = 3'000};
  PeriodicSpec mail_check;
  mail_check.period = hours(1.0);
  mail_check.period_jitter = 0.2;
  mail_check.bytes_down = std::uint64_t{4'000};
  mail_check.bytes_up = std::uint64_t{1'000};
  mail_check.state = trace::ProcessState::kBackground;
  mail_check.forced_close_mean_days = 1.0;
  mail_check.restart_on_foreground_only = true;
  app.periodic.push_back(mail_check);
  app.flush = FlushSpec{.flush_probability = 0.7,
                        .bytes_down = 30'000,
                        .bytes_up = 10'000,
                        .bursts = 2,
                        .mean_spacing = sec(8.0)};
  return app;
}

AppProfile antivirus() {
  AppProfile app;
  app.name = "Antivirus";
  app.category = AppCategory::kSystem;
  app.popularity = 0.3;
  app.install_probability = 0.3;
  app.foreground.sessions_per_day = 0.05;
  // Definition updates + cloud lookups: a classic silent battery drainer.
  PeriodicSpec defs;
  defs.period = hours(6.0);
  defs.period_jitter = 0.2;
  defs.bytes_down = std::uint64_t{3'000'000};
  defs.bytes_up = std::uint64_t{50'000};
  defs.state = trace::ProcessState::kService;
  defs.forced_close_mean_days = 0.0;  // sticky "protection" service
  app.periodic.push_back(defs);
  PeriodicSpec telemetry;
  telemetry.period = minutes(45.0);
  telemetry.period_jitter = 0.3;
  telemetry.bytes_down = std::uint64_t{1'200};
  telemetry.bytes_up = std::uint64_t{3'000};
  telemetry.state = trace::ProcessState::kService;
  telemetry.forced_close_mean_days = 0.0;
  telemetry.user_visible_probability = 0.0;  // pure overhead
  app.periodic.push_back(telemetry);
  return app;
}

AppProfile dropbox() {
  AppProfile app;
  app.name = "Dropbox";
  app.category = AppCategory::kOther;
  app.popularity = 0.9;
  app.install_probability = 0.45;
  app.foreground = {.sessions_per_day = 0.4,
                    .session_minutes_mean = 2.0,
                    .session_minutes_sigma = 0.7,
                    .burst_interval = sec(5.0),
                    .burst_bytes_down = 400'000,
                    .burst_bytes_up = 100'000};
  // The paper's example of a *legitimate* post-minimize transfer: camera
  // uploads continue right after the app is closed.
  app.flush = FlushSpec{.flush_probability = 0.6,
                        .bytes_down = 50'000,
                        .bytes_up = 2'500'000,  // photo upload
                        .bursts = 4,
                        .mean_spacing = sec(12.0)};
  PeriodicSpec sync;
  sync.period = hours(2.0);
  sync.period_jitter = 0.2;
  sync.bytes_down = std::uint64_t{30'000};
  sync.bytes_up = std::uint64_t{20'000};
  sync.state = trace::ProcessState::kBackground;
  sync.forced_close_mean_days = 2.0;
  sync.restart_on_foreground_only = true;
  app.periodic.push_back(sync);
  return app;
}

AppProfile game_with_ads() {
  AppProfile app;
  app.name = "CandySaga";
  app.category = AppCategory::kGame;
  app.popularity = 2.2;
  app.install_probability = 0.5;
  app.foreground = {.sessions_per_day = 4.0,
                    .session_minutes_mean = 6.0,
                    .session_minutes_sigma = 0.9,
                    .burst_interval = sec(25.0),  // ad refresh + score sync
                    .burst_bytes_down = 120'000,
                    .burst_bytes_up = 4'000};
  // Lives/notification polling continues for a while after play.
  PeriodicSpec lives;
  lives.period = minutes(20.0);
  lives.period_jitter = 0.15;
  lives.bytes_down = std::uint64_t{5'000};
  lives.bytes_up = std::uint64_t{1'500};
  lives.state = trace::ProcessState::kBackground;
  lives.phase = PeriodPhase::kResetOnBackground;
  lives.forced_close_mean_days = 0.5;
  lives.restart_mean_hours = 24.0;
  app.periodic.push_back(lives);
  return app;
}

}  // namespace

AppCatalog AppCatalog::paper_catalog() {
  AppCatalog catalog;
  // Social media.
  catalog.add(weibo());
  catalog.add(twitter());
  catalog.add(facebook());
  catalog.add(google_plus());
  // Periodic update services.
  catalog.add(samsung_push());
  catalog.add(urbanairship());
  catalog.add(maps());
  catalog.add(gmail());
  catalog.add(default_email());
  // Widgets.
  catalog.add(go_weather_widget());
  catalog.add(go_weather_app());
  catalog.add(accuweather_app());
  catalog.add(accuweather_widget());
  // Streaming / podcasts.
  catalog.add(spotify());
  catalog.add(pandora());
  catalog.add(pocketcasts());
  catalog.add(podcastaddict());
  // Browsers.
  catalog.add(chrome());
  catalog.add(browser_without_leak("Firefox", 0.3, 1.0));
  catalog.add(browser_without_leak("Browser", 0.7, 1.2));
  // System & Fig. 1/2 regulars.
  catalog.add(media_server());
  catalog.add(google_play());
  // Table 2 what-if candidates.
  catalog.add(messenger());
  catalog.add(espn());
  catalog.add(fourshared());
  catalog.add(stock_weather());
  // Fig. 6 spike sources.
  catalog.add(reset_phase_app("NewsTicker", 5.2, 0.8));
  catalog.add(reset_phase_app("SportsCenter", 10.4, 0.8));
  // Popular-app archetypes rounding out the Fig. 1 top-10 diversity.
  catalog.add(youtube());
  catalog.add(instagram());
  catalog.add(whatsapp());
  catalog.add(skype());
  catalog.add(netflix());
  catalog.add(kindle());
  catalog.add(reddit_client());
  catalog.add(antivirus());
  catalog.add(dropbox());
  catalog.add(game_with_ads());
  return catalog;
}

AppCatalog AppCatalog::full_catalog(std::uint64_t seed, std::size_t total_apps) {
  AppCatalog catalog = paper_catalog();
  Rng rng = Rng::keyed({seed, hash_name("synthetic-apps")});

  std::size_t index = 0;
  while (catalog.size() < total_apps) {
    AppProfile app;
    app.name = "app" + std::to_string(index++);
    // Popularity follows a long tail; most synthetic apps are niche.
    app.popularity = 0.05 + rng.pareto(0.05, 1.1);
    app.install_probability = std::min(0.6, 0.02 + rng.pareto(0.02, 1.2));
    app.foreground = {.sessions_per_day = 0.2 + rng.exponential(1.2),
                      .session_minutes_mean = 1.0 + rng.exponential(2.5),
                      .session_minutes_sigma = 0.8,
                      .burst_interval = sec(rng.uniform(6.0, 25.0)),
                      .burst_bytes_down =
                          static_cast<std::uint64_t>(rng.lognormal(9.8, 1.0)),
                      .burst_bytes_up = static_cast<std::uint64_t>(rng.lognormal(7.0, 1.0))};

    const double archetype = rng.uniform();
    if (archetype < 0.87) {
      // Foreground-only app with a first-minute flush: the majority, and the
      // reason 84% of apps send >80% of their bg bytes in the first minute.
      app.category = rng.chance(0.5) ? AppCategory::kGame : AppCategory::kShopping;
      app.flush = FlushSpec{
          .flush_probability = rng.uniform(0.5, 0.95),
          .bytes_down = static_cast<std::uint64_t>(rng.lognormal(10.0, 1.0)),
          .bytes_up = static_cast<std::uint64_t>(rng.lognormal(9.0, 1.0)),
          .bursts = static_cast<int>(1 + rng.uniform_int(3)),
          .mean_spacing = sec(rng.uniform(4.0, 15.0))};
    } else if (archetype < 0.93) {
      // Light periodic sync: hours-scale.
      app.category = AppCategory::kNews;
      PeriodicSpec sync;
      sync.period = hours(rng.uniform(1.0, 8.0));
      sync.period_jitter = rng.uniform(0.1, 0.4);
      sync.bytes_down = static_cast<std::uint64_t>(rng.lognormal(11.0, 1.2));
      sync.bytes_up = static_cast<std::uint64_t>(rng.lognormal(8.0, 1.0));
      sync.bursts_per_update = 2;
      sync.state = trace::ProcessState::kBackground;  // killable sync process
      sync.forced_close_mean_days = rng.uniform(1.0, 6.0);
      sync.restart_on_foreground_only = true;
      app.periodic.push_back(sync);
      app.flush = FlushSpec{.flush_probability = 0.6,
                            .bytes_down = 20'000,
                            .bytes_up = 10'000,
                            .bursts = 2,
                            .mean_spacing = sec(8.0)};
    } else if (archetype < 0.975) {
      // Aggressive periodic sync: minutes-scale — "new apps will likely
      // emerge that make the same mistakes" (§6).
      app.category = AppCategory::kSocialMedia;
      PeriodicSpec sync;
      sync.period = minutes(rng.uniform(8.0, 45.0));
      sync.period_jitter = rng.uniform(0.1, 0.5);
      sync.bytes_down = static_cast<std::uint64_t>(rng.lognormal(8.5, 1.0));
      sync.bytes_up = static_cast<std::uint64_t>(rng.lognormal(7.0, 1.0));
      sync.bursts_per_update = 2;
      sync.state = trace::ProcessState::kBackground;  // killable sync process
      sync.forced_close_mean_days = rng.uniform(0.5, 3.0);
      sync.restart_on_foreground_only = true;
      app.periodic.push_back(sync);
    } else {
      // Leaky app: does not cancel foreground work on minimize.
      app.category = AppCategory::kOther;
      LeakSpec leak;
      leak.leak_probability = rng.uniform(0.1, 0.4);
      leak.poll_period = sec(rng.uniform(15.0, 90.0));
      leak.poll_bytes_down = static_cast<std::uint64_t>(rng.lognormal(8.0, 0.8));
      leak.poll_bytes_up = 500;
      leak.duration_minutes_mu = rng.uniform(1.0, 2.0);
      leak.duration_minutes_sigma = 1.4;
      leak.pareto_tail_probability = rng.uniform(0.0, 0.03);
      app.leak = leak;
    }
    catalog.add(std::move(app));
  }
  return catalog;
}

}  // namespace wildenergy::appmodel
