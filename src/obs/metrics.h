// Process-wide metrics: named counters, gauges, and log-scale histograms.
//
// The pipeline is instrumented with plain uint64_t/double cells that cost one
// arithmetic op to bump and nothing to ignore — hot paths (burst machine,
// attributor) resolve their Counter* once at construction and increment a raw
// pointer thereafter. Reading is pull-based: RunStats and the --stats report
// snapshot the registry; nothing is published unless asked for.
//
// Cells are plain (non-atomic) on purpose: the sharded pipeline gives each
// shard its own registry instead of contending on one. Instrumentation sites
// resolve their cells from MetricsRegistry::current() — a thread-local
// pointer the pipeline redirects to the shard's registry for the duration of
// a worker task (ScopedMetricsRegistry) and merges into global() after the
// shards join. Outside a shard, current() is global(), so single-threaded
// code behaves exactly as before.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace wildenergy::obs {

class JsonWriter;  // obs/json.h

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (also usable as a double accumulator).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket log2-scale histogram of non-negative integer samples
/// (bytes, microseconds, counts). Bucket i holds samples in [2^(i-1), 2^i)
/// with bucket 0 reserved for zero, so the full uint64 range fits in 65
/// cells and record() is a bit_width plus an increment.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t sample);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t i);
  /// Exclusive upper bound of bucket i.
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t i);
  /// Bucket index a sample lands in.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t sample);

  /// Approximate quantile (q in [0, 1]) by linear interpolation within the
  /// containing bucket. Exact for q=0/q=1 (tracked min/max).
  [[nodiscard]] double percentile(double q) const;

  /// Fold another histogram's samples into this one (binwise).
  void merge_from(const Histogram& other);

  void reset();

  /// Emit this histogram as a JSON object: count/sum/min/max/mean, the p50/
  /// p95/p99 quantiles, and the non-empty buckets as [lo, hi) ranges with
  /// counts (the full distribution, not just summaries). Schema: DESIGN.md
  /// §11.
  void write_json(JsonWriter& w) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Name -> cell registry. Cells are created on first use and never move
/// (node-based map), so callers may cache references across calls.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Current value of a counter, 0 if it was never touched (does not create).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Zero every cell (names stay registered; cached pointers stay valid).
  void reset();

  /// "name value" dump of all non-zero cells, for debugging and --stats.
  void print(std::ostream& os) const;

  /// Fold another registry's cells into this one: counters and gauges add,
  /// histograms merge binwise. Cells missing here are created.
  void merge_from(const MetricsRegistry& other);

  /// Snapshot as a JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}; zero-valued cells are skipped (same filter as
  /// print()). Schema: DESIGN.md §11.
  void write_json(JsonWriter& w) const;
  /// write_json into a fresh document string.
  [[nodiscard]] std::string to_json() const;

  /// The process-wide registry the library's built-in instrumentation uses.
  static MetricsRegistry& global();

  /// The registry instrumentation on this thread should write to: the one
  /// installed by the innermost live ScopedMetricsRegistry, else global().
  static MetricsRegistry& current();

 private:
  friend class ScopedMetricsRegistry;
  static MetricsRegistry*& current_slot();


  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Redirects MetricsRegistry::current() on this thread to `registry` for the
/// scope's lifetime (restores the previous target on destruction). The shard
/// scheduler wraps each worker task in one of these so per-shard radio/
/// attribution counters land in shard-local cells.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry)
      : previous_(MetricsRegistry::current_slot()) {
    MetricsRegistry::current_slot() = registry;
  }
  ~ScopedMetricsRegistry() { MetricsRegistry::current_slot() = previous_; }

  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace wildenergy::obs
