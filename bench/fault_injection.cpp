// Fault-injection bench (DESIGN.md §8): what corruption costs at ingestion
// time, and what the retry-then-skip engine policy costs at execution time.
//
// Two views:
//  1. a generated study serialized to CSV and WETR binary, damaged by each
//     deterministic fault::CorruptionKind, then read back under every
//     trace::ReadPolicy through ValidatingSink -> EnergyLedger — wall time
//     plus how the damage surfaced (error / drops / repairs);
//  2. the sharded pipeline under a scripted FaultPlan: clean run vs a shard
//     that fails once and is retried vs a shard that exhausts its retries
//     and is skipped (kRetryThenSkip).
//
// Each measured run emits a WILDENERGY_BENCH_JSON record (bench_util.h)
// named "fault_injection/...".
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "energy/ledger.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "sim/generator.h"
#include "trace/binary_io.h"
#include "trace/csv_io.h"
#include "trace/validating_sink.h"
#include "util/table.h"

#include "bench_util.h"

namespace {

using namespace wildenergy;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

struct ReadOutcome {
  double wall_ms = 0.0;
  std::string outcome;  ///< "clean", "error", "degraded"
  std::uint64_t dropped = 0;
  std::uint64_t repaired = 0;
  std::uint64_t packets = 0;
};

ReadOutcome timed_read(const std::string& data, bool binary, trace::ReadPolicy policy) {
  ReadOutcome out;
  energy::EnergyLedger ledger;
  trace::ReadOptions options;
  options.policy = policy;
  trace::ValidatingSink validator{&ledger, options};
  std::istringstream is{data};
  const auto start = std::chrono::steady_clock::now();
  bool read_ok = false;
  bool truncated = false;
  if (binary) {
    const auto r = trace::read_binary_trace(is, validator, options);
    read_ok = r.ok() && r.checksum_ok;
    truncated = r.truncated;
    out.dropped = r.records_dropped;
    out.repaired = r.records_repaired;
  } else {
    const auto r = trace::read_csv_trace(is, validator, options);
    read_ok = r.ok();
    truncated = r.truncated;
    out.dropped = r.records_dropped;
    out.repaired = r.records_repaired;
  }
  out.wall_ms = elapsed_ms(start);
  out.dropped += validator.records_dropped();
  out.repaired += validator.records_repaired();
  const bool surfaced = !read_ok || truncated || !validator.status().ok() ||
                        out.dropped > 0 || out.repaired > 0;
  out.outcome = !read_ok || !validator.status().ok() ? "error"
                : surfaced                           ? "degraded"
                                                     : "clean";
  out.packets = ledger.total_packets();
  return out;
}

}  // namespace

int main() {
  const sim::StudyConfig cfg = benchutil::config_from_env(/*default_days=*/60);
  benchutil::print_header("Fault injection: corrupted ingestion & engine degradation", cfg);

  // Serialize the study once per format.
  std::ostringstream csv_os;
  std::ostringstream bin_os;
  {
    trace::CsvTraceWriter csv_writer{csv_os};
    sim::StudyGenerator{cfg}.run(csv_writer);
    trace::BinaryTraceWriter bin_writer{bin_os};
    sim::StudyGenerator{cfg}.run(bin_writer);
  }
  const std::string csv_data = csv_os.str();
  const std::string bin_data = bin_os.str();
  std::cout << "serialized: " << csv_data.size() / 1024 << " KiB CSV, "
            << bin_data.size() / 1024 << " KiB WETR binary\n\n";

  constexpr trace::ReadPolicy kPolicies[] = {trace::ReadPolicy::kStrict,
                                             trace::ReadPolicy::kSkipAndCount,
                                             trace::ReadPolicy::kBestEffort};

  // View 1: every corruption kind x read policy, plus the undamaged baseline.
  std::cout << "-- corrupted-trace ingestion (reader -> ValidatingSink -> ledger) --\n";
  TextTable table({"format", "fault", "policy", "wall ms", "outcome", "dropped", "repaired"});
  struct Case {
    bool binary;
    const char* label;
    std::string data;
  };
  std::vector<Case> cases;
  cases.push_back({false, "none", csv_data});
  cases.push_back({true, "none", bin_data});
  const fault::CorruptionKind kByteKinds[] = {
      fault::CorruptionKind::kBitFlip, fault::CorruptionKind::kTruncate,
      fault::CorruptionKind::kDuplicateSpan, fault::CorruptionKind::kSwapSpans};
  const fault::CorruptionKind kCsvKinds[] = {fault::CorruptionKind::kBadEnum,
                                             fault::CorruptionKind::kBadTimestamp};
  for (const auto kind : kByteKinds) {
    auto damaged = fault::apply_corruption(bin_data, {kind, cfg.seed});
    if (damaged.ok()) {
      cases.push_back({true, fault::to_string(kind).data(), std::move(damaged).value()});
    }
  }
  for (const auto kind : kCsvKinds) {
    auto damaged = fault::apply_corruption(csv_data, {kind, cfg.seed});
    if (damaged.ok()) {
      cases.push_back({false, fault::to_string(kind).data(), std::move(damaged).value()});
    }
  }
  for (const auto& c : cases) {
    for (const auto policy : kPolicies) {
      const ReadOutcome out = timed_read(c.data, c.binary, policy);
      table.add_row({c.binary ? "binary" : "csv", c.label, trace::to_string(policy),
                     fmt(out.wall_ms, 1), out.outcome, std::to_string(out.dropped),
                     std::to_string(out.repaired)});
      // The read path has no attribution stage, so there is no energy total
      // to report; no_joules() keeps a bogus "joules":0 out of the record.
      benchutil::report_perf(std::string{"fault_injection/read/"} +
                                 (c.binary ? "binary" : "csv") + "-" + c.label + "-" +
                                 trace::to_string(policy),
                             cfg, out.wall_ms, out.packets, benchutil::no_joules());
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "shape: lenient policies pay ~nothing over strict on clean data; the cost of\n"
               "corruption is bounded by the quarantine, never a crash or a silent ledger.\n\n";

  // View 2: engine failure policies under a scripted shard fault.
  std::cout << "-- sharded engine: clean vs retry vs retry-exhausted-skip --\n";
  struct EngineCase {
    const char* label;
    unsigned fail_attempts;  ///< 0 = no fault injected
  };
  const EngineCase engine_cases[] = {
      {"fault_injection/engine-clean", 0},
      {"fault_injection/engine-retry-once", 1},
      {"fault_injection/engine-skip-user", 1000},
  };
  for (const auto& ec : engine_cases) {
    fault::FaultPlan plan;
    if (ec.fail_attempts > 0) {
      plan.add({/*user=*/cfg.num_users / 2, /*nth_callback=*/100,
                /*fail_attempts=*/ec.fail_attempts, /*stall_ms=*/0});
    }
    core::PipelineOptions options;
    options.num_threads = 4;
    options.failure_policy = core::FailurePolicy::kRetryThenSkip;
    options.max_shard_retries = 2;
    options.fault_plan = ec.fail_attempts > 0 ? &plan : nullptr;
    sim::StudyGenerator generator{cfg};
    core::StudyPipeline pipeline{&generator, options};
    const auto result = pipeline.run();
    if (!result.ok()) {
      std::cerr << ec.label << ": run failed: " << result.status().message() << "\n";
      return 1;
    }
    const obs::RunStats& stats = result.value();
    std::cout << ec.label << ": retries=" << stats.shard_retries
              << " skipped_users=" << stats.failed_users.size() << "\n";
    benchutil::report_perf(ec.label, cfg, stats);
  }
  return 0;
}
