// Longitudinal trends (§3.1).
//
// "Background energy fluctuated by up to 60% from week to week throughout
//  the study. Examining specific apps, we did determine that some apps have
//  become more energy-efficient due to adjusting the inter-packet intervals
//  of background traffic."
//
// This sink accumulates weekly energy series (overall and per tracked app)
// and compares early-era vs late-era per-app efficiency, surfacing the
// behaviour evolutions Table 1 reports (Facebook 5 min -> 1 h, ...).
//
// Deliberately NOT shardable (trace/shardable.h): the weekly series are
// cross-user double accumulators indexed by calendar week, so a bit-exact
// merge would need per-user partials for every week cell; the sharded
// pipeline instead feeds this sink through its serial-replay fallback, which
// is deterministic by generator construction.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/sink.h"

namespace wildenergy::analysis {

struct WeeklySeries {
  std::vector<double> fg_joules;
  std::vector<double> bg_joules;

  [[nodiscard]] std::size_t weeks() const { return bg_joules.size(); }
  /// Largest relative week-over-week change of background energy, ignoring
  /// ramp-in/out weeks with negligible traffic.
  [[nodiscard]] double max_weekly_bg_fluctuation() const;
};

struct EraComparison {
  trace::AppId app = 0;
  double early_joules_per_day = 0.0;  ///< first third of the study
  double late_joules_per_day = 0.0;   ///< last third
  double early_uj_per_byte = 0.0;
  double late_uj_per_byte = 0.0;

  /// < 1 means the app became more energy-efficient per byte over the study.
  [[nodiscard]] double efficiency_ratio() const {
    return early_uj_per_byte > 0 ? late_uj_per_byte / early_uj_per_byte : 0.0;
  }
};

class LongitudinalAnalysis final : public trace::TraceSink {
 public:
  explicit LongitudinalAnalysis(std::vector<trace::AppId> tracked_apps = {});

  void on_study_begin(const trace::StudyMeta& meta) override;
  void on_packet(const trace::PacketRecord& packet) override;

  [[nodiscard]] const WeeklySeries& overall() const { return overall_; }
  [[nodiscard]] EraComparison era_comparison(trace::AppId app) const;

 private:
  struct EraAccum {
    double early_joules = 0.0;
    double late_joules = 0.0;
    std::uint64_t early_bytes = 0;
    std::uint64_t late_bytes = 0;
  };

  trace::StudyMeta meta_;
  std::int64_t num_days_ = 0;
  std::vector<trace::AppId> tracked_;
  std::unordered_set<trace::AppId> tracked_set_;
  WeeklySeries overall_;
  std::unordered_map<trace::AppId, EraAccum> eras_;
};

}  // namespace wildenergy::analysis
