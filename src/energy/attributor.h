// Per-app network energy attribution (paper §3.1).
//
// "As we evaluate the impact of each app in the wild, rather than the impact
//  of apps in isolation, we assign any tail energy to the last packet sent
//  during the tail period to avoid double-counting energy when there are
//  multiple concurrent flows. In this way, the total cellular network energy
//  consumed by each device is the sum of the energy assigned to each app."
//
// EnergyAttributor implements exactly that: it merges the device-wide packet
// stream of each user through one radio model instance, and attributes
//   - promotion + transfer segments -> the packet that caused them,
//   - tail segments                 -> the last packet before the tail,
//   - idle segments                 -> the device baseline (no app).
// Downstream sinks receive the same trace stream with PacketRecord::joules
// filled in, preserving time order.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "ckpt/checkpointable.h"
#include "radio/radio_model.h"
#include "trace/batch.h"
#include "trace/sink.h"

namespace wildenergy::radio {
class BurstMachine;
}  // namespace wildenergy::radio

namespace wildenergy::energy {

class AccountSpill;  // energy/account_file.h

/// Contiguous FIFO: a vector plus a head index. The attribution hot path
/// (kLastPacket) oscillates between zero and one pending element, so pops
/// recycle the buffer in place and pushes stop allocating after warm-up —
/// unlike std::deque's segment bookkeeping, which showed up in the
/// full-pipeline profile.
template <class T>
class PendingQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == buf_.size(); }
  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }
  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }
  [[nodiscard]] T& back() { return buf_.back(); }
  void push_back(const T& value) { buf_.push_back(value); }
  void pop_front() {
    if (++head_ == buf_.size()) clear();
  }
  void clear() {
    buf_.clear();
    head_ = 0;
  }
  [[nodiscard]] auto begin() { return buf_.begin() + static_cast<std::ptrdiff_t>(head_); }
  [[nodiscard]] auto end() { return buf_.end(); }
  [[nodiscard]] auto begin() const { return buf_.begin() + static_cast<std::ptrdiff_t>(head_); }
  [[nodiscard]] auto end() const { return buf_.end(); }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
};

using RadioModelFactory = std::function<std::unique_ptr<radio::RadioModel>()>;

/// Alternative attribution rules, for the ablation bench (DESIGN.md §4.1).
enum class TailPolicy {
  kLastPacket,   ///< the paper's rule: whole tail to the last packet
  kProportional, ///< split each tail across apps by their bytes in the
                 ///< preceding active period (double-counting-free variant)
};

/// Plain event counters the attributor bumps as it works. They feed
/// obs::RunStats; incrementing them never touches the energy math, so they
/// cannot perturb attribution (obs_test proves joules are bit-identical
/// with and without stats collection).
struct AttributionCounters {
  std::uint64_t packets = 0;
  std::uint64_t transitions = 0;
  std::uint64_t users = 0;
  std::uint64_t tail_attributions = 0;    ///< tail segments assigned to a packet
  std::uint64_t proportional_splits = 0;  ///< active windows split under kProportional
  std::uint64_t promotion_segments = 0;
  std::uint64_t transfer_segments = 0;
  std::uint64_t tail_segments = 0;
  std::uint64_t drx_segments = 0;  ///< tail segments whose radio state is a DRX phase
  std::uint64_t idle_segments = 0;

  /// Fold another attributor's counters in (shard merge; order-free).
  void merge_from(const AttributionCounters& other);
};

class EnergyAttributor final : public trace::TraceSink, public ckpt::CheckpointableSink {
 public:
  /// Energy partials for one user — kept per user so cross-user double sums
  /// fold in user-id order (see determinism note below).
  struct UserEnergy {
    double device = 0.0;
    double attributed = 0.0;
    double baseline = 0.0;
    double tail = 0.0;
    double promotion = 0.0;
    double transfer = 0.0;
  };

  /// `downstream` receives the energy-annotated stream; it must outlive this.
  EnergyAttributor(RadioModelFactory factory, trace::TraceSink* downstream,
                   TailPolicy policy = TailPolicy::kLastPacket);

  void on_study_begin(const trace::StudyMeta& meta) override;
  void on_user_begin(trace::UserId user) override;
  void on_packet(const trace::PacketRecord& packet) override;
  void on_transition(const trace::StateTransition& transition) override;
  void on_user_end(trace::UserId user) override;
  void on_study_end() override;
  /// Batched attribution: feeds consecutive-packet runs to the radio model
  /// through RadioModel::on_transfers (one segment adapter per run instead
  /// of one per packet) and emits the annotated events as one batch.
  /// Bit-identical to the per-record path for every batch size.
  void on_batch(const trace::EventBatch& batch) override;

  // Study-wide energy totals. Each is kept as per-user partial sums and
  // folded in user-id order here, so a sharded run merged in user order
  // yields bit-identical values to the serial pass (trace/shardable.h).

  /// Total energy of every segment (incl. idle baseline) — the device total.
  [[nodiscard]] double device_joules() const;
  /// Energy attributed to apps (promotion + transfer + tail).
  [[nodiscard]] double attributed_joules() const;
  /// Idle/paging baseline energy (never attributed).
  [[nodiscard]] double baseline_joules() const;
  [[nodiscard]] double tail_joules() const;
  [[nodiscard]] double promotion_joules() const;
  [[nodiscard]] double transfer_joules() const;
  /// Event counters for this run (reset on each study begin).
  [[nodiscard]] const AttributionCounters& counters() const { return counters_; }

  /// Fold a shard attributor's per-user energy and counters into this one
  /// (called by the pipeline in user-id order; users must be disjoint).
  void merge_from(const EnergyAttributor& shard);

  // -- fold-and-release (DESIGN.md §15) -------------------------------------
  /// Arm fold mode: the dense per-user partial array is not allocated at
  /// all. Serial runs accumulate into a single live slot; sharded runs stage
  /// merged rows in a small buffer. fold_user() then folds the completed
  /// user's partials into the study-wide accumulators (in stream order —
  /// bit-identical to the ascending query-time folds), spills them as an
  /// "attrib" row-group section, and drops the row.
  void set_account_spill(AccountSpill* spill) { spill_ = spill; }
  [[nodiscard]] bool fold_mode() const { return spill_ != nullptr; }
  /// The engine calls this explicitly (the attributor sits above the fan-out
  /// and is not a ShardableSink).
  void fold_user(trace::UserId user);
  /// Decode one spilled "attrib" section (the fold_user encode mirror).
  [[nodiscard]] static util::Status decode_user_energy(std::string_view payload,
                                                       UserEnergy& out);

  [[nodiscard]] obs::MemoryUse memory_use() const override;

  // CheckpointableSink: per-user energy partials (raw double bits) plus the
  // attribution counters. Per-packet transients (window_, pending tails) are
  // empty at user boundaries, so only the durable fold state travels.
  void save_state(ckpt::ByteWriter& out) const override;
  [[nodiscard]] util::Status restore_state(ckpt::ByteReader& in) override;

 private:
  void handle_segment(const radio::EnergySegment& segment);
  void flush_pending();
  /// Settle `packet` after the model consumed its transfer: flush the
  /// previous window under kLastPacket, then append the packet (annotated
  /// with the promotion+transfer energy accumulated in current_joules_) to
  /// the window and reset the accumulator.
  void finalize_packet(const trace::PacketRecord& packet);
  /// Batch path: a segment produced by run event `index` arrived. Finalizes
  /// every earlier event of the run first, so attribution state matches the
  /// per-record path exactly when the segment is handled.
  void on_run_segment(std::size_t index, const radio::EnergySegment& segment);
  /// Forward one annotated event: into out_ during on_batch, straight to
  /// downstream_ otherwise.
  void emit_packet(const trace::PacketRecord& packet);
  void emit_transition(const trace::StateTransition& transition);

  RadioModelFactory factory_;
  trace::TraceSink* downstream_;
  TailPolicy policy_;
  std::unique_ptr<radio::RadioModel> model_;
  /// model_ downcast to the concrete machine (null for custom models),
  /// refreshed per user. Lets the batch path call the statically-dispatched
  /// BurstMachine::transfers — no std::function hop per segment.
  radio::BurstMachine* burst_ = nullptr;
  trace::StudyMeta meta_;

  // Packets whose tail attribution is not yet settled. Under kLastPacket this
  // holds at most one packet; under kProportional, the whole active window.
  PendingQueue<trace::PacketRecord> window_;
  // Transitions arriving while packets are pending must not overtake them.
  PendingQueue<trace::StateTransition> held_transitions_;
  double pending_tail_ = 0.0;   ///< tail energy awaiting proportional split
  double current_joules_ = 0.0; ///< promo+transfer energy of the packet being fed

  // Per-user energy partials, dense by UserId (DESIGN.md §12). touched_
  // marks users that actually began a bracket so the query-time folds visit
  // exactly the users the old associative layout held — same fold sequence,
  // bit-identical sums.
  std::vector<UserEnergy> per_user_;
  std::vector<bool> user_touched_;
  UserEnergy* current_ = nullptr;  ///< this user's partials (set in on_user_begin)
  AttributionCounters counters_;

  // Fold-and-release state (all empty/zero outside fold mode).
  AccountSpill* spill_ = nullptr;  ///< non-owning; armed by the engine
  std::uint64_t spilled_self_ = 0;
  UserEnergy folded_;              ///< study-wide fold over released users
  UserEnergy live_;                ///< serial fold-mode accumulator
  trace::UserId live_user_ = 0;
  bool live_valid_ = false;
  /// Sharded fold mode: merged rows awaiting their fold_user call.
  std::vector<std::pair<trace::UserId, UserEnergy>> staged_;

  // Hoisted sink adapters (building a std::function per packet was a
  // measurable per-record cost) and reused batch-path scratch state.
  radio::SegmentSink segment_sink_;
  radio::IndexedSegmentSink run_sink_;
  trace::EventBatch out_;             ///< annotated output batch (reused)
  bool batching_ = false;             ///< emit target: out_ vs downstream_
  std::vector<radio::TransferEvent> run_events_;  ///< current packet run
  const trace::PacketRecord* run_packets_ = nullptr;  ///< run's source packets
  std::size_t run_finalized_ = 0;     ///< run packets settled so far
};

}  // namespace wildenergy::energy
