#include "analysis/time_since_fg.h"

#include <algorithm>
#include <cmath>

namespace wildenergy::analysis {

TimeSinceForegroundAnalysis::TimeSinceForegroundAnalysis(Duration horizon, Duration bin)
    : horizon_(horizon),
      bin_(bin),
      histogram_(0.0, horizon.seconds(),
                 static_cast<std::size_t>(horizon.us / std::max<std::int64_t>(bin.us, 1))) {}

std::unique_ptr<trace::TraceSink> TimeSinceForegroundAnalysis::clone_shard() const {
  return std::make_unique<TimeSinceForegroundAnalysis>(horizon_, bin_);
}

void TimeSinceForegroundAnalysis::merge_from(trace::TraceSink& shard) {
  auto& other = dynamic_cast<TimeSinceForegroundAnalysis&>(shard);
  histogram_.merge_from(other.histogram_);
  for (const auto& [app, tally] : other.tallies_) {
    AppTally& mine = tallies_[app];
    mine.bg_bytes += tally.bg_bytes;
    mine.bg_bytes_first_minute += tally.bg_bytes_first_minute;
  }
}

void TimeSinceForegroundAnalysis::on_study_begin(const trace::StudyMeta&) {
  last_exit_.clear();
  in_foreground_.clear();
  tallies_.clear();
}

void TimeSinceForegroundAnalysis::on_transition(const trace::StateTransition& t) {
  const std::uint64_t k = key(t.user, t.app);
  if (t.is_fg_to_bg()) {
    last_exit_[k] = t.time;
    in_foreground_[k] = false;
  } else if (t.is_bg_to_fg()) {
    in_foreground_[k] = true;
  }
}

void TimeSinceForegroundAnalysis::on_packet(const trace::PacketRecord& p) {
  if (trace::is_foreground(p.state)) return;
  const std::uint64_t k = key(p.user, p.app);
  const auto fg = in_foreground_.find(k);
  if (fg != in_foreground_.end() && fg->second) return;  // app is fg; bg-state packet is stale
  const auto it = last_exit_.find(k);
  if (it == last_exit_.end()) return;  // never foregrounded: no reference point
  const Duration dt = p.time - it->second;
  if (dt.us < 0) return;

  // Per-app tallies are unbounded in dt (the 84%-of-apps criterion covers
  // all background bytes); only the plotted histogram has a horizon.
  AppTally& tally = tallies_[p.app];
  tally.bg_bytes += p.bytes;
  if (dt <= sec(60.0)) tally.bg_bytes_first_minute += p.bytes;
  if (dt <= horizon_) histogram_.add(dt.seconds(), static_cast<double>(p.bytes));
}

double TimeSinceForegroundAnalysis::fraction_of_apps_frontloaded(double share,
                                                                 std::uint64_t min_bytes) const {
  std::size_t eligible = 0;
  std::size_t frontloaded = 0;
  for (const auto& [app, tally] : tallies_) {
    if (tally.bg_bytes < min_bytes) continue;
    ++eligible;
    if (static_cast<double>(tally.bg_bytes_first_minute) >=
        share * static_cast<double>(tally.bg_bytes)) {
      ++frontloaded;
    }
  }
  return eligible ? static_cast<double>(frontloaded) / static_cast<double>(eligible) : 0.0;
}

std::vector<double> TimeSinceForegroundAnalysis::spike_offsets_seconds(
    std::size_t max_spikes) const {
  // Find local maxima beyond 120 s that stand well above their neighbourhood.
  struct Spike {
    double offset = 0.0;
    double prominence = 0.0;
  };
  std::vector<Spike> spikes;
  const auto masses = histogram_.masses();
  const std::size_t start =
      static_cast<std::size_t>(120.0 / histogram_.bin_width()) + 1;
  for (std::size_t i = start; i + 2 < masses.size(); ++i) {
    const double v = masses[i];
    if (v <= 0.0) continue;
    // Background level: median over bins 3..10 away on each side — spikes
    // from jittered timers spread over a couple of bins, so the immediate
    // neighbours are excluded from the baseline.
    std::vector<double> neigh;
    for (std::size_t j = (i >= 10 ? i - 10 : 0); j + 3 <= i; ++j) neigh.push_back(masses[j]);
    for (std::size_t j = i + 3; j <= std::min(i + 10, masses.size() - 1); ++j) {
      neigh.push_back(masses[j]);
    }
    if (neigh.empty()) continue;
    std::nth_element(neigh.begin(), neigh.begin() + neigh.size() / 2, neigh.end());
    const double median = neigh[neigh.size() / 2];
    if (v > 1.35 * median && v > masses[i - 1] && v >= masses[i + 1]) {
      spikes.push_back({histogram_.bin_lo(i) + histogram_.bin_width() / 2.0, v / (median + 1.0)});
    }
  }
  // Report the earliest qualifying spikes: the paper's figure annotates the
  // 5- and 10-minute offsets; later bins are harmonics over a thinner base.
  std::sort(spikes.begin(), spikes.end(),
            [](const Spike& a, const Spike& b) { return a.offset < b.offset; });
  if (spikes.size() > max_spikes) spikes.resize(max_spikes);
  std::vector<double> out;
  out.reserve(spikes.size());
  for (const auto& s : spikes) out.push_back(s.offset);
  return out;
}

std::uint64_t TimeSinceForegroundAnalysis::memory_bytes() const {
  constexpr std::uint64_t kNodeOverhead = 2 * sizeof(void*);
  std::uint64_t total = histogram_.bins() * sizeof(double);
  total += last_exit_.size() * (kNodeOverhead + sizeof(std::uint64_t) + sizeof(TimePoint)) +
           last_exit_.bucket_count() * sizeof(void*);
  total += in_foreground_.size() * (kNodeOverhead + sizeof(std::uint64_t) + sizeof(bool)) +
           in_foreground_.bucket_count() * sizeof(void*);
  total += tallies_.size() * (kNodeOverhead + sizeof(trace::AppId) + sizeof(AppTally)) +
           tallies_.bucket_count() * sizeof(void*);
  return total;
}

}  // namespace wildenergy::analysis
