// Edge-case and property tests across modules: zero-byte bursts, boundary
// arrivals, timeline windows, cross-seed invariants.
#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.h"
#include "sim/generator.h"
#include "trace/csv_io.h"
#include "radio/burst_machine.h"
#include "radio/timeline.h"
#include "trace/flow_assembler.h"

namespace wildenergy {
namespace {

using radio::BurstMachine;
using radio::Direction;
using radio::RadioTimeline;
using radio::SegmentKind;

TEST(BurstMachineEdge, ZeroByteBurstStillCostsAirtimeAndTail) {
  BurstMachine lte{radio::lte_params()};
  const double e = lte.isolated_burst_energy(0, Direction::kDownlink);
  // Promotion + min airtime + full tail: a "nearly empty" request is not free
  // — the core §4.2 finding.
  EXPECT_GT(e, 9.0);
}

TEST(BurstMachineEdge, ArrivalExactlyAtTailEndPaysPromotion) {
  const auto params = radio::lte_params();
  BurstMachine lte{params};
  RadioTimeline tl;
  lte.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl.sink());
  // Active period = promotion (260 ms) + min airtime (250 ms); the tail ends
  // exactly total_tail() after that.
  const TimePoint tail_end = TimePoint{0} + params.idle_promotion.duration +
                             params.min_transfer_time + params.total_tail();
  lte.on_transfer({tail_end, 100, Direction::kDownlink}, tl.sink());
  lte.finish(tail_end + minutes(1.0), tl.sink());

  int promotions = 0;
  for (const auto& s : tl.segments()) {
    if (s.kind == SegmentKind::kPromotion) ++promotions;
  }
  EXPECT_EQ(promotions, 2);  // [begin,end) semantics: boundary = idle
  EXPECT_TRUE(tl.is_contiguous());
}

TEST(BurstMachineEdge, ArrivalJustBeforeTailEndSkipsPromotion) {
  const auto params = radio::lte_params();
  BurstMachine lte{params};
  RadioTimeline tl;
  lte.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl.sink());
  const TimePoint just_before = TimePoint{0} + params.idle_promotion.duration +
                                params.min_transfer_time + params.total_tail() - usec(1);
  lte.on_transfer({just_before, 100, Direction::kDownlink}, tl.sink());
  lte.finish(just_before + minutes(1.0), tl.sink());

  int promotions = 0;
  for (const auto& s : tl.segments()) {
    if (s.kind == SegmentKind::kPromotion) ++promotions;
  }
  EXPECT_EQ(promotions, 1);
}

TEST(BurstMachineEdge, FinishBeforeTailCompletesClipsEnergy) {
  BurstMachine lte{radio::lte_params()};
  RadioTimeline tl;
  lte.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl.sink());
  // Finish 1 s after the burst: only ~0.75 s of tail fits.
  lte.finish(TimePoint{0} + sec(1.0), tl.sink());
  const double full_tail = 1.0 * 1.0604 + 10.576 * 0.80;
  EXPECT_LT(tl.joules_of_kind(SegmentKind::kTail), full_tail * 0.2);
  EXPECT_TRUE(tl.is_contiguous());
}

TEST(RadioTimelineEdge, WindowQueriesProRate) {
  RadioTimeline tl;
  tl.add({TimePoint{0}, TimePoint{0} + sec(10.0), 100.0, SegmentKind::kTransfer, "X"});
  // Half the segment's duration => half its energy.
  EXPECT_NEAR(tl.joules_in_window(TimePoint{0} + sec(2.5), TimePoint{0} + sec(7.5)), 50.0, 1e-9);
  // Disjoint window => zero.
  EXPECT_DOUBLE_EQ(tl.joules_in_window(TimePoint{0} + sec(20.0), TimePoint{0} + sec(30.0)), 0.0);
  // Covering window => all.
  EXPECT_NEAR(tl.joules_in_window(TimePoint{0} - sec(5.0), TimePoint{0} + sec(50.0)), 100.0,
              1e-9);
}

TEST(RadioTimelineEdge, ContiguityDetectsGapsAndOverlaps) {
  RadioTimeline gap;
  gap.add({TimePoint{0}, TimePoint{10}, 1.0, SegmentKind::kIdle, "A"});
  gap.add({TimePoint{20}, TimePoint{30}, 1.0, SegmentKind::kIdle, "B"});
  EXPECT_FALSE(gap.is_contiguous());

  RadioTimeline overlap;
  overlap.add({TimePoint{0}, TimePoint{10}, 1.0, SegmentKind::kIdle, "A"});
  overlap.add({TimePoint{5}, TimePoint{15}, 1.0, SegmentKind::kIdle, "B"});
  EXPECT_FALSE(overlap.is_contiguous());
}

TEST(FlowAssemblerEdge, PacketExactlyAtGapBoundaryStaysInFlow) {
  std::vector<trace::FlowRecord> flows;
  trace::FlowAssembler fa{[&](const trace::FlowRecord& f) { flows.push_back(f); }, sec(15.0)};
  fa.on_study_begin({});
  fa.on_user_begin(0);
  trace::PacketRecord p;
  p.app = 1;
  p.bytes = 10;
  p.time = kEpoch;
  fa.on_packet(p);
  p.time = kEpoch + sec(15.0);  // exactly the gap: not *greater*, same flow
  fa.on_packet(p);
  p.time = kEpoch + sec(15.0) + sec(15.0) + usec(1);  // just over: new flow
  fa.on_packet(p);
  fa.on_user_end(0);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets, 2u);
}

// Cross-seed property sweep: the pipeline invariants must hold for any seed.
class PipelineInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PipelineInvariants, ConservationAndBoundsAcrossSeeds) {
  sim::StudyConfig cfg = sim::small_study(static_cast<std::uint64_t>(GetParam()));
  cfg.num_users = 3;
  cfg.num_days = 25;
  cfg.total_apps = 60;
  sim::StudyGenerator generator{cfg};
  core::StudyPipeline pipeline{&generator};
  pipeline.run();

  const auto& ledger = pipeline.ledger();
  const auto& attr = pipeline.attributor();
  // Conservation: ledger total == attributed total; device = attributed+idle.
  EXPECT_NEAR(ledger.total_joules(), attr.attributed_joules(),
              attr.attributed_joules() * 1e-9);
  EXPECT_NEAR(attr.device_joules(), attr.attributed_joules() + attr.baseline_joules(),
              attr.device_joules() * 1e-9);
  // Component split sums.
  EXPECT_NEAR(attr.attributed_joules(),
              attr.tail_joules() + attr.promotion_joules() + attr.transfer_joules(),
              attr.attributed_joules() * 1e-9);
  // Physical bounds: everything positive; tail dominates small-transfer mixes.
  EXPECT_GT(attr.tail_joules(), 0.0);
  EXPECT_GT(attr.promotion_joules(), 0.0);
  EXPECT_GT(attr.transfer_joules(), 0.0);
  // Per-state totals sum to the ledger total.
  double states = 0.0;
  for (double s : ledger.state_totals()) states += s;
  EXPECT_NEAR(states, ledger.total_joules(), ledger.total_joules() * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineInvariants, ::testing::Values(1, 7, 42, 1234, 99999));

// Cross-seed sweep: serialization round-trips for any generated stream.
class RoundTripAcrossSeeds : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripAcrossSeeds, CsvPreservesLedger) {
  sim::StudyConfig cfg = sim::small_study(static_cast<std::uint64_t>(GetParam()));
  cfg.num_users = 2;
  cfg.num_days = 10;
  cfg.total_apps = 40;
  sim::StudyGenerator generator{cfg};
  core::StudyPipeline pipeline{&generator};
  std::stringstream csv;
  trace::CsvTraceWriter writer{csv};
  pipeline.add_analysis(&writer);
  pipeline.run();

  energy::EnergyLedger replayed;
  const auto result = trace::read_csv_trace(csv, replayed);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(replayed.total_bytes(), pipeline.ledger().total_bytes());
  EXPECT_NEAR(replayed.total_joules(), pipeline.ledger().total_joules(),
              pipeline.ledger().total_joules() * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripAcrossSeeds, ::testing::Values(3, 17, 2718));

}  // namespace
}  // namespace wildenergy
