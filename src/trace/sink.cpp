#include "trace/sink.h"

#include "trace/batch.h"

namespace wildenergy::trace {

// The default batch handler IS the per-record stream: replaying through this
// sink's own virtual callbacks makes every unmigrated sink — including ones
// that count or intercept individual callbacks, like fault::FaultySink —
// behave bit-identically whether upstream batches or not.
void TraceSink::on_batch(const EventBatch& batch) { replay(batch, *this); }

void TraceMulticast::on_batch(const EventBatch& batch) {
  for (auto* s : sinks_) s->on_batch(batch);
}

void TraceCollector::on_batch(const EventBatch& batch) {
  // Events of each kind are in array order, so bulk appends reproduce
  // exactly what replaying the interleaved stream would collect.
  packets_.insert(packets_.end(), batch.packets.begin(), batch.packets.end());
  transitions_.insert(transitions_.end(), batch.transitions.begin(), batch.transitions.end());
}

std::unique_ptr<TraceSink> TraceCollector::clone_shard() const {
  return std::make_unique<TraceCollector>();
}

void TraceCollector::merge_from(TraceSink& shard) {
  auto& other = dynamic_cast<TraceCollector&>(shard);
  packets_.insert(packets_.end(), other.packets_.begin(), other.packets_.end());
  transitions_.insert(transitions_.end(), other.transitions_.begin(),
                      other.transitions_.end());
  other.packets_.clear();
  other.transitions_.clear();
}

}  // namespace wildenergy::trace
