#include "trace/csv_io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

namespace wildenergy::trace {

void CsvTraceWriter::on_study_begin(const StudyMeta& meta) {
  os_ << "M," << meta.num_users << ',' << meta.num_apps << ',' << meta.study_begin.us << ','
      << meta.study_end.us << '\n';
}

void CsvTraceWriter::on_user_begin(UserId user) { os_ << "U," << user << '\n'; }

void CsvTraceWriter::on_packet(const PacketRecord& p) {
  os_ << "P," << p.time.us << ',' << p.user << ',' << p.app << ',' << p.flow << ',' << p.bytes
      << ',' << (p.direction == radio::Direction::kUplink ? "up" : "down") << ','
      << to_string(p.interface) << ',' << to_string(p.state) << ',' << p.joules << '\n';
}

void CsvTraceWriter::on_transition(const StateTransition& t) {
  os_ << "T," << t.time.us << ',' << t.user << ',' << t.app << ',' << to_string(t.from) << ','
      << to_string(t.to) << '\n';
}

void CsvTraceWriter::on_user_end(UserId user) { os_ << "V," << user << '\n'; }

void CsvTraceWriter::on_study_end() { os_ << "E\n"; }

namespace {

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

template <typename T>
bool parse_int(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace

CsvReadResult read_csv_trace(std::istream& is, TraceSink& sink) {
  CsvReadResult result;
  std::string line;
  const auto fail = [&](const std::string& why) {
    result.ok = false;
    result.error = "line " + std::to_string(result.lines + 1) + ": " + why;
    return result;
  };

  while (std::getline(is, line)) {
    if (line.empty()) {
      ++result.lines;
      continue;
    }
    const auto fields = split(line);
    const std::string_view tag = fields[0];
    if (tag == "M") {
      StudyMeta meta;
      if (fields.size() != 5 || !parse_int(fields[1], meta.num_users) ||
          !parse_int(fields[2], meta.num_apps) || !parse_int(fields[3], meta.study_begin.us) ||
          !parse_int(fields[4], meta.study_end.us)) {
        return fail("bad meta record");
      }
      sink.on_study_begin(meta);
    } else if (tag == "U" || tag == "V") {
      UserId user = 0;
      if (fields.size() != 2 || !parse_int(fields[1], user)) return fail("bad user record");
      if (tag == "U") {
        sink.on_user_begin(user);
      } else {
        sink.on_user_end(user);
      }
    } else if (tag == "P") {
      PacketRecord p;
      if (fields.size() != 10 || !parse_int(fields[1], p.time.us) ||
          !parse_int(fields[2], p.user) || !parse_int(fields[3], p.app) ||
          !parse_int(fields[4], p.flow) || !parse_int(fields[5], p.bytes) ||
          !parse_double(fields[9], p.joules)) {
        return fail("bad packet record");
      }
      if (fields[6] == "up") {
        p.direction = radio::Direction::kUplink;
      } else if (fields[6] == "down") {
        p.direction = radio::Direction::kDownlink;
      } else {
        return fail("bad direction");
      }
      if (fields[7] == "cell") {
        p.interface = Interface::kCellular;
      } else if (fields[7] == "wifi") {
        p.interface = Interface::kWifi;
      } else {
        return fail("bad interface");
      }
      if (!parse_process_state(fields[8], p.state)) return fail("bad process state");
      sink.on_packet(p);
    } else if (tag == "T") {
      StateTransition t;
      if (fields.size() != 6 || !parse_int(fields[1], t.time.us) ||
          !parse_int(fields[2], t.user) || !parse_int(fields[3], t.app) ||
          !parse_process_state(fields[4], t.from) || !parse_process_state(fields[5], t.to)) {
        return fail("bad transition record");
      }
      sink.on_transition(t);
    } else if (tag == "E") {
      sink.on_study_end();
    } else {
      return fail("unknown record tag");
    }
    ++result.lines;
  }
  result.ok = true;
  return result;
}

}  // namespace wildenergy::trace
