#include "energy/ledger.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wildenergy::energy {

void EnergyLedger::on_study_begin(const trace::StudyMeta& meta) {
  meta_ = meta;
  num_days_ = static_cast<std::size_t>(std::ceil(meta.span().days()));
  accounts_.clear();
  total_joules_ = 0.0;
  total_bytes_ = 0;
  total_packets_ = 0;
  state_totals_.fill(0.0);
}

void EnergyLedger::on_packet(const trace::PacketRecord& p) {
  auto [it, inserted] = accounts_.try_emplace(key(p.user, p.app));
  AppUserAccount& acc = it->second;
  if (inserted) {
    acc.user = p.user;
    acc.app = p.app;
    acc.days.resize(std::max<std::size_t>(num_days_, 1));
  }
  acc.bytes += p.bytes;
  acc.packets += 1;
  acc.joules += p.joules;
  acc.state_joules[static_cast<std::size_t>(p.state)] += p.joules;

  const auto day = static_cast<std::size_t>(
      std::clamp<std::int64_t>((p.time - meta_.study_begin).us / 86'400'000'000LL, 0,
                               static_cast<std::int64_t>(acc.days.size()) - 1));
  DayCell& cell = acc.days[day];
  if (trace::is_foreground(p.state)) {
    cell.fg_joules += p.joules;
    cell.fg_bytes += p.bytes;
  } else {
    cell.bg_joules += p.joules;
    cell.bg_bytes += p.bytes;
  }

  total_joules_ += p.joules;
  total_bytes_ += p.bytes;
  total_packets_ += 1;
  state_totals_[static_cast<std::size_t>(p.state)] += p.joules;
}

const AppUserAccount* EnergyLedger::find(trace::UserId user, trace::AppId app) const {
  const auto it = accounts_.find(key(user, app));
  return it == accounts_.end() ? nullptr : &it->second;
}

AppUserAccount EnergyLedger::app_total(trace::AppId app) const {
  AppUserAccount total;
  total.app = app;
  for (const auto& [k, acc] : accounts_) {
    if (acc.app != app) continue;
    total.bytes += acc.bytes;
    total.packets += acc.packets;
    total.joules += acc.joules;
    for (std::size_t s = 0; s < trace::kNumProcessStates; ++s) {
      total.state_joules[s] += acc.state_joules[s];
    }
  }
  return total;
}

std::vector<trace::AppId> EnergyLedger::apps() const {
  std::vector<trace::AppId> out;
  for (const auto& [k, acc] : accounts_) out.push_back(acc.app);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace wildenergy::energy
