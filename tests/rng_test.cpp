// Unit tests for util/rng.h: determinism and distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace wildenergy {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, KeyedStreamsAreIndependent) {
  Rng a = Rng::keyed({42, hash_name("periodic"), 0, 7});
  Rng b = Rng::keyed({42, hash_name("periodic"), 0, 8});
  Rng a2 = Rng::keyed({42, hash_name("periodic"), 0, 7});
  EXPECT_NE(a(), b());
  Rng a_replay = Rng::keyed({42, hash_name("periodic"), 0, 7});
  (void)a2;
  Rng fresh = Rng::keyed({42, hash_name("periodic"), 0, 7});
  EXPECT_EQ(a_replay(), fresh());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng{7};
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 100ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_int(n), n);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng{13};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng{17};
  std::vector<double> xs;
  const int n = 100001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(std::log(60.0), 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 60.0, 2.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng{19};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, PoissonMeanConverges) {
  Rng rng{23};
  for (double mean : {0.3, 4.0, 80.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.02) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng{29};
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng{31};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) counts[rng.zipf(10, 1.2)]++;
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, HashNameStableAndDistinct) {
  EXPECT_EQ(hash_name("Chrome"), hash_name("Chrome"));
  EXPECT_NE(hash_name("Chrome"), hash_name("chrome"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

}  // namespace
}  // namespace wildenergy
