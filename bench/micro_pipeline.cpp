// Performance microbenchmarks (google-benchmark): the radio state machine,
// the attribution pipeline, and the study generator. These guard the
// streaming design goal of DESIGN.md §4.2 — full-length 623-day studies must
// stay practical on a laptop.
#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "energy/attributor.h"
#include "radio/burst_machine.h"
#include "sim/generator.h"
#include "util/rng.h"

#include "bench_util.h"

namespace wildenergy {
namespace {

void BM_RadioModelBursts(benchmark::State& state) {
  radio::BurstMachine lte{radio::lte_params()};
  double joules = 0.0;
  const radio::SegmentSink sink = [&](const radio::EnergySegment& s) { joules += s.joules; };
  std::int64_t n = 0;
  for (auto _ : state) {
    lte.on_transfer({TimePoint{n * 20'000'000}, 5000, radio::Direction::kDownlink}, sink);
    ++n;
  }
  lte.finish(TimePoint{n * 20'000'000 + 60'000'000}, sink);
  benchmark::DoNotOptimize(joules);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RadioModelBursts);

void BM_IsolatedBurstEnergy(benchmark::State& state) {
  radio::BurstMachine lte{radio::lte_params()};
  double acc = 0.0;
  for (auto _ : state) {
    acc += lte.isolated_burst_energy(static_cast<std::uint64_t>(state.range(0)),
                                     radio::Direction::kDownlink);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_IsolatedBurstEnergy)->Arg(100)->Arg(100'000)->Arg(10'000'000);

void BM_AttributionPipeline(benchmark::State& state) {
  // Pre-generate a packet schedule, then measure attribution throughput.
  Rng rng{7};
  std::vector<trace::PacketRecord> packets;
  TimePoint t{0};
  for (int i = 0; i < 100'000; ++i) {
    t += sec(rng.exponential(5.0));
    trace::PacketRecord p;
    p.time = t;
    p.app = static_cast<trace::AppId>(rng.uniform_int(40));
    p.bytes = 200 + rng.uniform_int(100'000);
    p.state = trace::ProcessState::kService;
    packets.push_back(p);
  }
  trace::StudyMeta meta;
  meta.num_users = 1;
  meta.study_end = t + hours(1.0);

  for (auto _ : state) {
    trace::TraceSink null_sink;
    energy::EnergyAttributor attr{radio::make_lte_model, &null_sink};
    attr.on_study_begin(meta);
    attr.on_user_begin(0);
    for (const auto& p : packets) attr.on_packet(p);
    attr.on_user_end(0);
    benchmark::DoNotOptimize(attr.device_joules());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_AttributionPipeline)->Unit(benchmark::kMillisecond);

void BM_StudyGeneration(benchmark::State& state) {
  sim::StudyConfig cfg = sim::small_study(42);
  cfg.num_users = 1;
  cfg.num_days = state.range(0);
  const sim::StudyGenerator gen{cfg};
  std::uint64_t packets = 0;
  for (auto _ : state) {
    class Counter final : public trace::TraceSink {
     public:
      std::uint64_t n = 0;
      void on_packet(const trace::PacketRecord&) override { ++n; }
    } counter;
    gen.run(counter);
    packets = counter.n;
  }
  state.counters["packets"] = static_cast<double>(packets);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_StudyGeneration)->Arg(10)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_FullPipelineSmallStudy(benchmark::State& state) {
  for (auto _ : state) {
    core::StudyPipeline pipeline{sim::small_study(42)};
    pipeline.run();
    benchmark::DoNotOptimize(pipeline.ledger().total_joules());
  }
  state.SetLabel("6 users x 60 days x 80 apps");
}
BENCHMARK(BM_FullPipelineSmallStudy)->Unit(benchmark::kMillisecond);

void BM_ShardedPipeline(benchmark::State& state) {
  core::PipelineOptions options;
  options.num_threads = static_cast<unsigned>(state.range(0));
  sim::StudyConfig cfg = sim::small_study(42);
  cfg.num_users = 8;  // enough users to keep every worker in the sweep busy
  for (auto _ : state) {
    core::StudyPipeline pipeline{cfg, options};
    pipeline.run();
    benchmark::DoNotOptimize(pipeline.ledger().total_joules());
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_ShardedPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wildenergy

// Custom main instead of BENCHMARK_MAIN(): after the microbenches, sweep the
// end-to-end pipeline across worker-thread counts at the env-configured scale
// and emit one perf footer / WILDENERGY_BENCH_JSON record per thread count
// (with `threads` and `speedup` = serial wall over that run's wall). On a
// single-CPU host the sweep honestly reports speedup ~= 1.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace wildenergy;
  const sim::StudyConfig cfg = benchutil::config_from_env(/*default_days=*/60);
  double serial_wall_ms = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    core::PipelineOptions options;
    options.num_threads = threads;
    core::StudyPipeline pipeline{cfg, options};
    pipeline.run();
    if (threads == 1) serial_wall_ms = pipeline.last_run_stats().wall_ms;
    benchutil::report_perf("micro_pipeline", cfg, pipeline, serial_wall_ms);
  }
  return 0;
}
