// Energy segments: the common currency between radio models, the energy
// attribution engine, and the Monsoon-style power sampler.
//
// A radio model consumes a time-ordered stream of transfer events (packets or
// bursts, device-wide) and emits contiguous EnergySegments describing what the
// radio hardware was doing and how much energy each interval consumed. The
// attribution engine then maps segments to apps using the paper's rule
// (tail -> last packet in the tail period, §3.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

#include "util/time.h"

namespace wildenergy::radio {

/// Direction of a transfer, device-centric.
enum class Direction : std::uint8_t { kDownlink, kUplink };

/// One network transfer burst presented to a radio model. `bytes` is the
/// payload size of the burst; models convert it to airtime via their rate
/// parameters.
struct TransferEvent {
  TimePoint time;
  std::uint64_t bytes = 0;
  Direction direction = Direction::kDownlink;
};

/// Attribution category of an energy segment (see DESIGN.md §4.1).
enum class SegmentKind : std::uint8_t {
  kIdle,       ///< baseline (paging) power; not attributed to any app
  kPromotion,  ///< state-promotion ramp; attributed to the triggering packet
  kTransfer,   ///< active transfer airtime; attributed to the transferring packet
  kTail,       ///< post-transfer high-power tail; attributed to the last packet
};

[[nodiscard]] constexpr const char* to_string(SegmentKind k) {
  switch (k) {
    case SegmentKind::kIdle: return "idle";
    case SegmentKind::kPromotion: return "promotion";
    case SegmentKind::kTransfer: return "transfer";
    case SegmentKind::kTail: return "tail";
  }
  return "?";
}

/// A contiguous interval of radio activity at (approximately) constant power.
struct EnergySegment {
  TimePoint begin;
  TimePoint end;
  double joules = 0.0;
  SegmentKind kind = SegmentKind::kIdle;
  /// Human-readable hardware state, e.g. "LTE_CRX", "UMTS_FACH_TAIL". A
  /// view into the model's parameter set; valid while the model is alive.
  std::string_view state_name = "idle";
  /// True for tail segments spent in a DRX phase. Precomputed per tail phase
  /// by the model so attribution counters never scan state_name per segment.
  bool drx = false;

  [[nodiscard]] Duration duration() const { return end - begin; }
  [[nodiscard]] double avg_power_w() const {
    const double s = duration().seconds();
    return s > 0 ? joules / s : 0.0;
  }
};

/// Receives segments in non-decreasing time order with no gaps or overlaps
/// between consecutive segments from one model instance.
using SegmentSink = std::function<void(const EnergySegment&)>;

/// Batch variant: additionally receives the index (into the fed run of
/// transfer events) of the event that produced each segment. Indices are
/// non-decreasing across one run.
using IndexedSegmentSink = std::function<void(std::size_t, const EnergySegment&)>;

}  // namespace wildenergy::radio
