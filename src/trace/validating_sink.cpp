#include "trace/validating_sink.h"

#include <limits>

#include "obs/metrics.h"

namespace wildenergy::trace {

namespace {

constexpr std::size_t kSnippetMax = 96;

std::string truncate_snippet(std::string s) {
  if (s.size() > kSnippetMax) {
    s.resize(kSnippetMax);
    s += "...";
  }
  return s;
}

bool valid_state(ProcessState s) {
  return static_cast<std::uint8_t>(s) < kNumProcessStates;
}
bool valid_direction(radio::Direction d) { return static_cast<std::uint8_t>(d) <= 1; }
bool valid_interface(Interface i) { return static_cast<std::uint8_t>(i) <= 1; }

std::string describe(const PacketRecord& p) {
  return "packet user=" + std::to_string(p.user) + " app=" + std::to_string(p.app) +
         " t=" + std::to_string(p.time.us) + "us bytes=" + std::to_string(p.bytes);
}

std::string describe(const StateTransition& t) {
  return "transition user=" + std::to_string(t.user) + " app=" + std::to_string(t.app) +
         " t=" + std::to_string(t.time.us) + "us";
}

}  // namespace

ValidatingSink::ValidatingSink(TraceSink* downstream, ReadOptions options)
    : downstream_(downstream),
      options_(options),
      dropped_metric_(&obs::MetricsRegistry::current().counter("validate.records_dropped")),
      repaired_metric_(&obs::MetricsRegistry::current().counter("validate.records_repaired")) {}

void ValidatingSink::note(std::uint64_t& counter, obs::Counter* metric, const std::string& reason,
                          const std::string& snippet) {
  ++counter;
  metric->inc();
  if (quarantine_.size() < options_.max_quarantine) {
    quarantine_.push_back({records_seen_, reason, truncate_snippet(snippet)});
  }
}

bool ValidatingSink::flag(const std::string& reason, const std::string& snippet) {
  if (options_.policy == ReadPolicy::kStrict) {
    if (status_.ok()) {
      status_ = util::Status::failed_precondition("record " + std::to_string(records_seen_) +
                                                  ": " + reason + " [" +
                                                  truncate_snippet(snippet) + "]");
    }
    ++records_dropped_;
    dropped_metric_->inc();
    return true;
  }
  note(records_dropped_, dropped_metric_, reason, snippet);
  return true;
}

void ValidatingSink::emit(const PacketRecord& packet) {
  if (batching_) {
    out_.add(packet);
  } else {
    downstream_->on_packet(packet);
  }
}

void ValidatingSink::emit(const StateTransition& transition) {
  if (batching_) {
    out_.add(transition);
  } else {
    downstream_->on_transition(transition);
  }
}

void ValidatingSink::on_batch(const EventBatch& batch) {
  // Run every event through the per-record validation (so drop/repair/poison
  // semantics, counters and quarantine are bit-identical to a per-record
  // stream), collecting survivors into one output batch.
  batching_ = true;
  out_.clear();
  out_.user = batch.user;
  std::size_t pi = 0;
  std::size_t ti = 0;
  for (const EventKind kind : batch.order) {
    if (kind == EventKind::kPacket) {
      on_packet(batch.packets[pi++]);
    } else {
      on_transition(batch.transitions[ti++]);
    }
  }
  batching_ = false;
  if (!out_.empty()) downstream_->on_batch(out_);
}

void ValidatingSink::on_study_begin(const StudyMeta& meta) {
  ++records_seen_;
  if (options_.policy == ReadPolicy::kStrict && !status_.ok()) {
    ++records_dropped_;
    return;  // poisoned
  }
  if (in_study_ || study_ended_) {
    flag(in_study_ ? "nested study begin" : "study begin after study end", "study_begin");
    return;
  }
  in_study_ = true;
  has_window_ = meta.study_end.us > meta.study_begin.us;
  window_begin_us_ = meta.study_begin.us;
  window_end_us_ = meta.study_end.us;
  downstream_->on_study_begin(meta);
}

void ValidatingSink::on_user_begin(UserId user) {
  ++records_seen_;
  if (options_.policy == ReadPolicy::kStrict && !status_.ok()) {
    ++records_dropped_;
    return;
  }
  const std::string snippet = "user_begin " + std::to_string(user);
  if (!in_study_) {
    flag("user begin outside study bracket", snippet);
    return;
  }
  if (open_user_.has_value()) {
    if (options_.policy == ReadPolicy::kBestEffort) {
      // Repair: the previous user's end record went missing — close it.
      note(records_repaired_, repaired_metric_,
           "user " + std::to_string(*open_user_) + " left open; auto-closed", snippet);
      downstream_->on_user_end(*open_user_);
    } else {
      flag("user begin while user " + std::to_string(*open_user_) + " is open", snippet);
      return;
    }
  }
  open_user_ = user;
  last_time_us_ = std::numeric_limits<std::int64_t>::min();
  downstream_->on_user_begin(user);
}

void ValidatingSink::on_packet(const PacketRecord& packet) {
  ++records_seen_;
  if (options_.policy == ReadPolicy::kStrict && !status_.ok()) {
    ++records_dropped_;
    return;
  }
  if (!in_study_ || !open_user_.has_value() || *open_user_ != packet.user) {
    flag(open_user_.has_value()
             ? "packet for user " + std::to_string(packet.user) + " inside user " +
                   std::to_string(*open_user_) + "'s bracket"
             : "packet outside a user bracket",
         describe(packet));
    return;
  }
  if (!valid_direction(packet.direction) || !valid_interface(packet.interface) ||
      !valid_state(packet.state)) {
    flag("packet enum out of range", describe(packet));
    return;
  }
  if (has_window_ && (packet.time.us < window_begin_us_ || packet.time.us > window_end_us_)) {
    flag("packet timestamp outside the study window", describe(packet));
    return;
  }
  if (packet.time.us < last_time_us_) {
    if (options_.policy == ReadPolicy::kBestEffort) {
      note(records_repaired_, repaired_metric_,
           "backwards packet timestamp clamped", describe(packet));
      PacketRecord repaired = packet;
      repaired.time.us = last_time_us_;
      emit(repaired);
      return;
    }
    flag("packet timestamp goes backwards", describe(packet));
    return;
  }
  last_time_us_ = packet.time.us;
  emit(packet);
}

void ValidatingSink::on_transition(const StateTransition& transition) {
  ++records_seen_;
  if (options_.policy == ReadPolicy::kStrict && !status_.ok()) {
    ++records_dropped_;
    return;
  }
  if (!in_study_ || !open_user_.has_value() || *open_user_ != transition.user) {
    flag(open_user_.has_value()
             ? "transition for user " + std::to_string(transition.user) + " inside user " +
                   std::to_string(*open_user_) + "'s bracket"
             : "transition outside a user bracket",
         describe(transition));
    return;
  }
  if (!valid_state(transition.from) || !valid_state(transition.to)) {
    flag("transition state out of range", describe(transition));
    return;
  }
  if (has_window_ &&
      (transition.time.us < window_begin_us_ || transition.time.us > window_end_us_)) {
    flag("transition timestamp outside the study window", describe(transition));
    return;
  }
  if (transition.time.us < last_time_us_) {
    if (options_.policy == ReadPolicy::kBestEffort) {
      note(records_repaired_, repaired_metric_,
           "backwards transition timestamp clamped", describe(transition));
      StateTransition repaired = transition;
      repaired.time.us = last_time_us_;
      emit(repaired);
      return;
    }
    flag("transition timestamp goes backwards", describe(transition));
    return;
  }
  last_time_us_ = transition.time.us;
  emit(transition);
}

void ValidatingSink::on_user_end(UserId user) {
  ++records_seen_;
  if (options_.policy == ReadPolicy::kStrict && !status_.ok()) {
    ++records_dropped_;
    return;
  }
  const std::string snippet = "user_end " + std::to_string(user);
  if (!in_study_ || !open_user_.has_value() || *open_user_ != user) {
    flag(open_user_.has_value()
             ? "user end for " + std::to_string(user) + " while user " +
                   std::to_string(*open_user_) + " is open"
             : "user end without a matching user begin",
         snippet);
    return;
  }
  open_user_.reset();
  downstream_->on_user_end(user);
}

void ValidatingSink::on_study_end() {
  ++records_seen_;
  if (options_.policy == ReadPolicy::kStrict && !status_.ok()) {
    ++records_dropped_;
    return;
  }
  if (!in_study_) {
    flag(study_ended_ ? "second study end" : "study end without study begin", "study_end");
    return;
  }
  if (open_user_.has_value()) {
    if (options_.policy == ReadPolicy::kBestEffort) {
      note(records_repaired_, repaired_metric_,
           "user " + std::to_string(*open_user_) + " left open at study end; auto-closed",
           "study_end");
      downstream_->on_user_end(*open_user_);
      open_user_.reset();
    } else {
      flag("study end while user " + std::to_string(*open_user_) + " is open", "study_end");
      return;
    }
  }
  in_study_ = false;
  study_ended_ = true;
  downstream_->on_study_end();
}

}  // namespace wildenergy::trace
