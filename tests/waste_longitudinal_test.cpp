// Tests for the wasted-update and longitudinal analyses.
#include <gtest/gtest.h>

#include "analysis/longitudinal.h"
#include "analysis/waste.h"
#include "trace/interface_filter.h"

namespace wildenergy::analysis {
namespace {

using trace::PacketRecord;
using trace::ProcessState;
using trace::StateTransition;

trace::StudyMeta meta_days(double num_days) {
  trace::StudyMeta meta;
  meta.num_users = 1;
  meta.num_apps = 8;
  meta.study_begin = kEpoch;
  meta.study_end = kEpoch + days(num_days);
  return meta;
}

PacketRecord pkt(double t_s, trace::AppId app, ProcessState state, double joules = 2.0,
                 std::uint64_t bytes = 100) {
  PacketRecord p;
  p.time = kEpoch + sec(t_s);
  p.app = app;
  p.bytes = bytes;
  p.state = state;
  p.joules = joules;
  return p;
}

StateTransition to_fg(double t_s, trace::AppId app) {
  StateTransition t;
  t.time = kEpoch + sec(t_s);
  t.app = app;
  t.from = ProcessState::kBackground;
  t.to = ProcessState::kForeground;
  return t;
}

TEST(WastedUpdates, UpdateFollowedByUseIsUseful) {
  WastedUpdateAnalysis waste{{1}, hours(12.0)};
  waste.on_study_begin(meta_days(2.0));
  waste.on_user_begin(0);
  waste.on_packet(pkt(1000.0, 1, ProcessState::kService));  // update
  waste.on_transition(to_fg(5000.0, 1));                    // used ~1 h later
  waste.on_user_end(0);
  const auto r = waste.result(1);
  EXPECT_EQ(r.updates, 1u);
  EXPECT_EQ(r.wasted_updates, 0u);
  EXPECT_DOUBLE_EQ(r.wasted_joules, 0.0);
}

TEST(WastedUpdates, StaleUpdateIsWasted) {
  WastedUpdateAnalysis waste{{1}, hours(1.0)};
  waste.on_study_begin(meta_days(3.0));
  waste.on_user_begin(0);
  waste.on_packet(pkt(1000.0, 1, ProcessState::kService, 2.0));
  waste.on_transition(to_fg(1000.0 + 3.0 * 3600.0, 1));  // 3 h later: too late
  waste.on_user_end(0);
  const auto r = waste.result(1);
  EXPECT_EQ(r.updates, 1u);
  EXPECT_EQ(r.wasted_updates, 1u);
  EXPECT_DOUBLE_EQ(r.wasted_joules, 2.0);
  EXPECT_DOUBLE_EQ(r.wasted_energy_fraction(), 1.0);
}

TEST(WastedUpdates, NeverUsedAllWasted) {
  WastedUpdateAnalysis waste{{1}, hours(12.0)};
  waste.on_study_begin(meta_days(5.0));
  waste.on_user_begin(0);
  for (int i = 0; i < 10; ++i) {
    waste.on_packet(pkt(3600.0 * (i + 1) * 4, 1, ProcessState::kService, 1.0));
  }
  waste.on_user_end(0);
  const auto r = waste.result(1);
  EXPECT_EQ(r.updates, 10u);
  EXPECT_EQ(r.wasted_updates, 10u);
  EXPECT_DOUBLE_EQ(r.wasted_update_fraction(), 1.0);
}

TEST(WastedUpdates, BurstsWithinOneFlowAreOneUpdate) {
  WastedUpdateAnalysis waste{{1}, hours(12.0)};
  waste.on_study_begin(meta_days(1.0));
  waste.on_user_begin(0);
  // Three packets 2 s apart: one reconstructed flow, one update.
  waste.on_packet(pkt(100.0, 1, ProcessState::kService, 1.0));
  waste.on_packet(pkt(102.0, 1, ProcessState::kService, 1.0));
  waste.on_packet(pkt(104.0, 1, ProcessState::kService, 1.0));
  waste.on_user_end(0);
  EXPECT_EQ(waste.result(1).updates, 1u);
}

TEST(WastedUpdates, UntrackedAppsIgnored) {
  WastedUpdateAnalysis waste{{1}, hours(12.0)};
  waste.on_study_begin(meta_days(1.0));
  waste.on_user_begin(0);
  waste.on_packet(pkt(100.0, 2, ProcessState::kService));
  waste.on_user_end(0);
  EXPECT_EQ(waste.result(2).updates, 0u);
}

TEST(Longitudinal, WeeklySeriesAccumulates) {
  LongitudinalAnalysis lon{{1}};
  lon.on_study_begin(meta_days(28.0));
  lon.on_packet(pkt(3600.0, 1, ProcessState::kService, 10.0));             // week 0
  lon.on_packet(pkt(8.0 * 86400.0, 1, ProcessState::kService, 20.0));      // week 1
  lon.on_packet(pkt(8.5 * 86400.0, 1, ProcessState::kForeground, 7.0));    // week 1 fg
  ASSERT_EQ(lon.overall().weeks(), 4u);
  EXPECT_DOUBLE_EQ(lon.overall().bg_joules[0], 10.0);
  EXPECT_DOUBLE_EQ(lon.overall().bg_joules[1], 20.0);
  EXPECT_DOUBLE_EQ(lon.overall().fg_joules[1], 7.0);
}

TEST(Longitudinal, EraComparisonDetectsEfficiencyGain) {
  LongitudinalAnalysis lon{{1}};
  lon.on_study_begin(meta_days(90.0));
  // Early era: 10 J per 100 B. Late era: 1 J per 100 B (batched updates).
  for (int d = 0; d < 30; ++d) {
    lon.on_packet(pkt(d * 86400.0 + 60.0, 1, ProcessState::kService, 10.0, 100));
  }
  for (int d = 60; d < 90; ++d) {
    lon.on_packet(pkt(d * 86400.0 + 60.0, 1, ProcessState::kService, 1.0, 100));
  }
  const auto era = lon.era_comparison(1);
  EXPECT_NEAR(era.early_joules_per_day, 10.0, 1e-9);
  EXPECT_NEAR(era.late_joules_per_day, 1.0, 1e-9);
  EXPECT_NEAR(era.efficiency_ratio(), 0.1, 1e-9);
}

TEST(Longitudinal, FluctuationMetric) {
  WeeklySeries s;
  s.bg_joules = {0.0, 100.0, 100.0, 160.0, 100.0, 100.0, 100.0};
  s.fg_joules.assign(s.bg_joules.size(), 0.0);
  EXPECT_NEAR(s.max_weekly_bg_fluctuation(), 0.6, 1e-9);
}

TEST(InterfaceFilter, DropsOtherInterface) {
  trace::TraceCollector out;
  trace::InterfaceFilter filter{&out, trace::Interface::kCellular};
  filter.on_study_begin(meta_days(1.0));
  filter.on_user_begin(0);
  PacketRecord cell = pkt(1.0, 1, ProcessState::kService);
  PacketRecord wifi = pkt(2.0, 1, ProcessState::kService);
  wifi.interface = trace::Interface::kWifi;
  wifi.bytes = 777;
  filter.on_packet(cell);
  filter.on_packet(wifi);
  filter.on_transition(to_fg(3.0, 1));
  filter.on_user_end(0);
  ASSERT_EQ(out.packets().size(), 1u);
  EXPECT_EQ(out.packets()[0].interface, trace::Interface::kCellular);
  EXPECT_EQ(out.transitions().size(), 1u);  // transitions always pass
  EXPECT_EQ(filter.dropped_packets(), 1u);
  EXPECT_EQ(filter.dropped_bytes(), 777u);
}

}  // namespace
}  // namespace wildenergy::analysis
