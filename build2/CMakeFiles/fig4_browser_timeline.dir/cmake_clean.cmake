file(REMOVE_RECURSE
  "CMakeFiles/fig4_browser_timeline.dir/bench/fig4_browser_timeline.cpp.o"
  "CMakeFiles/fig4_browser_timeline.dir/bench/fig4_browser_timeline.cpp.o.d"
  "bench/fig4_browser_timeline"
  "bench/fig4_browser_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_browser_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
