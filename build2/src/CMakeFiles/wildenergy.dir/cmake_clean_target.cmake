file(REMOVE_RECURSE
  "libwildenergy.a"
)
