#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <ostream>

#include "obs/json.h"

namespace wildenergy::obs {

std::size_t Histogram::bucket_index(std::uint64_t sample) {
  return static_cast<std::size_t>(std::bit_width(sample));  // 0 -> 0, 1 -> 1, 2..3 -> 2, ...
}

std::uint64_t Histogram::bucket_lo(std::size_t i) {
  if (i == 0) return 0;
  return std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::bucket_hi(std::size_t i) {
  if (i == 0) return 1;
  if (i >= 64) return ~std::uint64_t{0};
  return std::uint64_t{1} << i;
}

void Histogram::record(std::uint64_t sample) {
  buckets_[bucket_index(sample)] += 1;
  if (count_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  count_ += 1;
  sum_ += static_cast<double>(sample);
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = seen + static_cast<double>(buckets_[i]);
    if (next >= target) {
      // Interpolate inside [lo, hi), clipped to the observed extrema.
      const double lo = std::max(static_cast<double>(bucket_lo(i)), static_cast<double>(min_));
      const double hi = std::min(static_cast<double>(bucket_hi(i)), static_cast<double>(max_));
      const double frac = (target - seen) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * frac;
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

void Histogram::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("count", count_);
  w.kv("sum", sum_);
  w.kv("min", min());
  w.kv("max", max_);
  w.kv("mean", mean());
  w.kv("p50", percentile(0.50));
  w.kv("p95", percentile(0.95));
  w.kv("p99", percentile(0.99));
  w.key("buckets");
  w.begin_array();
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    w.begin_object();
    w.kv("lo", bucket_lo(i));
    w.kv("hi", bucket_hi(i));
    w.kv("count", buckets_[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string{name}, Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string{name}, Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string{name}, Histogram{}).first->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void MetricsRegistry::print(std::ostream& os) const {
  for (const auto& [name, c] : counters_) {
    if (c.value() != 0) os << name << " " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (g.value() != 0.0) os << name << " " << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (h.count() != 0) {
      os << name << " count=" << h.count() << " mean=" << h.mean() << " p50=" << h.percentile(0.5)
         << " p99=" << h.percentile(0.99) << " max=" << h.max() << "\n";
    }
  }
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).inc(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).add(g.value());
  for (const auto& [name, h] : other.histograms_) histogram(name).merge_from(h);
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    if (c.value() != 0) w.kv(name, c.value());
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    if (g.value() != 0.0) w.kv(name, g.value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    if (h.count() == 0) continue;
    w.key(name);
    h.write_json(w);
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry*& MetricsRegistry::current_slot() {
  thread_local MetricsRegistry* current = nullptr;
  return current;
}

MetricsRegistry& MetricsRegistry::current() {
  MetricsRegistry* const scoped = current_slot();
  return scoped != nullptr ? *scoped : global();
}

}  // namespace wildenergy::obs
