# Empty dependencies file for example_update_strategy_planner.
# This may be replaced when dependencies are built.
