// Checkpoint snapshots: versioned, checksummed, atomically-written state of
// a run in progress (DESIGN.md §13).
//
// A Snapshot is the generic payload both engines share: the StudyMeta it was
// taken under (stale detection), per-user completion progress, named u64
// counters (RunStats partials, radio counters, sweep progress), and named
// per-sink sections holding each CheckpointableSink's serialized state.
//
// On disk a snapshot is framed like a WETR trace: "WECK" magic, a version
// byte, the payload, and an FNV-1a checksum trailer over everything before
// it. Files are named ckpt_<seq> with monotonically increasing sequence
// numbers, written to a temp name and renamed into place so a crash mid-write
// never replaces a good checkpoint with a torn one. CheckpointReader scans
// newest-first and falls back to the last good sequence when the newest is
// truncated, bit-flipped, or otherwise undecodable — recovery is never
// silent: the fallback distance is surfaced through LoadResult and RunStats.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ckpt/codec.h"
#include "fault/plan.h"
#include "trace/sink.h"
#include "util/status.h"

namespace wildenergy::ckpt {

inline constexpr char kCheckpointMagic[4] = {'W', 'E', 'C', 'K'};
inline constexpr std::uint8_t kCheckpointVersion = 1;

struct Snapshot {
  trace::StudyMeta meta;
  std::vector<trace::UserId> completed_users;
  std::vector<trace::UserId> failed_users;
  /// Named u64 counters, in insertion order (RunStats partials etc.).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Named per-sink sections, in insertion order.
  std::vector<std::pair<std::string, std::string>> sections;

  void set_counter(std::string name, std::uint64_t value);
  /// 0 when the counter is absent (additive counters default to zero).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  void add_section(std::string name, std::string payload);
  [[nodiscard]] const std::string* section(std::string_view name) const;
};

/// Serialize a snapshot into the framed on-disk byte layout.
[[nodiscard]] std::string encode_snapshot(const Snapshot& snapshot, std::uint64_t seq);

/// Decode and validate (magic, version, checksum, exact framing). Returns a
/// positioned data-loss status on any damage.
[[nodiscard]] util::StatusOr<Snapshot> decode_snapshot(std::string_view bytes,
                                                       std::uint64_t* seq_out = nullptr);

/// Reject a snapshot taken under a different study shape (kFailedPrecondition
/// naming the mismatch) — resuming it would fold partials into the wrong
/// slots silently.
[[nodiscard]] util::Status check_snapshot_meta(const Snapshot& snapshot,
                                               const trace::StudyMeta& expected);

struct CheckpointWriterOptions {
  /// Checkpoints older than the newest `keep_last` sequences are deleted
  /// after each successful write.
  std::size_t keep_last = 2;
  /// Optional scripted checkpoint-write faults (kill-and-recover harness).
  fault::FaultPlan* fault_plan = nullptr;
};

class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string dir, CheckpointWriterOptions options = {});

  /// Write one snapshot as the next sequence (tmp-write + rename). A failed
  /// write (I/O error, injected or real) is counted and reported but leaves
  /// previous checkpoints intact — the caller may continue and retry at the
  /// next boundary. An injected hard-stop fault throws fault::ShardFault
  /// *after* the file lands, simulating a process kill at the worst moment.
  [[nodiscard]] util::Status write(const Snapshot& snapshot);

  /// Continue numbering after a resumed run's loaded sequence.
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

  [[nodiscard]] std::uint64_t checkpoints_written() const { return checkpoints_written_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t write_failures() const { return write_failures_; }

 private:
  std::string dir_;
  CheckpointWriterOptions options_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t attempts_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t write_failures_ = 0;
};

class CheckpointReader {
 public:
  struct LoadResult {
    Snapshot snapshot;
    std::uint64_t seq = 0;
    /// Sequence actually loaded when one or more newer checkpoints were
    /// rejected (torn/corrupt); 0 when the newest one was good.
    std::uint64_t recovered_from_seq = 0;
    std::uint64_t rejected = 0;  ///< newer checkpoints that failed validation
  };

  /// Load the newest decodable checkpoint in `dir`. kNotFound when the
  /// directory or any checkpoint file is missing; kDataLoss (with the newest
  /// file's diagnosis) when every checkpoint is damaged.
  [[nodiscard]] static util::StatusOr<LoadResult> load_latest(const std::string& dir);
};

}  // namespace wildenergy::ckpt
