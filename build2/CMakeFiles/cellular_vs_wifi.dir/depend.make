# Empty dependencies file for cellular_vs_wifi.
# This may be replaced when dependencies are built.
