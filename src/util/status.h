// Status / StatusOr: how errors cross module boundaries.
//
// The ingestion readers, the fault-injection layer, and the sharded engine
// all need to hand failures upward without exceptions leaking across the
// sink protocol or ad-hoc {bool ok; string error} structs multiplying (one
// per reader, as they did before PR 3). A Status is a code plus a
// human-readable message; StatusOr<T> carries either a value or the Status
// explaining why there is none. Deliberately tiny — no payloads, no
// stack traces — because every consumer in this codebase either prints the
// message or branches on ok().
#pragma once

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace wildenergy::util {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     ///< malformed input the caller controls (CLI flags, specs)
  kDataLoss,            ///< corrupt or truncated data detected at a boundary
  kFailedPrecondition,  ///< stream-protocol invariant violated
  kAborted,             ///< work abandoned (e.g. a shard exhausted its retries)
  kNotFound,            ///< named thing does not exist (file, user, app)
  kInternal,            ///< invariant we own was broken
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kDataLoss: return "data loss";
    case StatusCode::kFailedPrecondition: return "failed precondition";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kInternal: return "internal";
  }
  return "?";
}

class Status {
 public:
  /// Default status is OK; error statuses carry a non-empty message.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok_status() { return {}; }
  [[nodiscard]] static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status data_loss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }
  [[nodiscard]] static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  [[nodiscard]] static Status aborted(std::string m) {
    return {StatusCode::kAborted, std::move(m)};
  }
  [[nodiscard]] static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>" — the one-line diagnostic the CLI prints.
  [[nodiscard]] std::string to_string() const {
    if (ok()) return "ok";
    return std::string(util::to_string(code_)) + ": " + message_;
  }

  /// Keep the first error: assigning onto an error status is a no-op, so a
  /// loop can `status.update(step())` and report the root cause at the end.
  void update(Status other) {
    if (ok()) *this = std::move(other);
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

/// A T or the Status explaining its absence. value() asserts ok(); callers
/// branch on ok() first (all uses in this codebase are two-line unwraps).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() {
    assert(ok());
    return value_;
  }
  [[nodiscard]] const T& value() const {
    assert(ok());
    return value_;
  }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace wildenergy::util
