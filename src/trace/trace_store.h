// TraceStore: the cached columnar trace behind the sweep engine.
//
// A scenario sweep (core/sweep.h) evaluates many (policy × radio × analysis)
// variants over the SAME canonical event stream. Re-running StudyGenerator
// per scenario pays the expensive part — session synthesis, sampling,
// sorting, ~75% of pipeline wall time — K times for identical bytes. A
// TraceStore captures the stream once and replays it arbitrarily often:
//
//   capture (TraceSink side)          replay (TraceSource side)
//   ------------------------          -------------------------
//   generator/reader -> store         store.emit(sink, batch_size)
//                                     store.emit_user(user, sink, batch_size)
//
// Layout: one owned EventBatch per user — the PR-4 columnar layout (packet
// column, transition column, interleave vector) holding that user's ENTIRE
// stream — in arrival order, plus a user-id index for O(log n) random
// access. Replay slices a user's columns into batch_size spans (or streams
// per record), reproducing exactly the event sequence the original source
// emitted; downstream outputs are therefore bit-identical to consuming the
// live source, for every batch size (trace/batch.h invariants).
//
// The store is single-writer (capture) but its replay side is const after
// capture: concurrent emit_user() calls from different shard workers are
// safe because replay only reads the columns (each caller brings its own
// scratch batch). This is what lets the sweep engine fan (scenario × user)
// shards out over one shared store.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/batch.h"
#include "trace/sink.h"
#include "trace/store_backend.h"
#include "trace/trace_source.h"
#include "util/status.h"

namespace wildenergy::trace {

class TraceStore final : public StoreBackend {
 public:
  // -- capture (TraceSink) --------------------------------------------------
  // Feed the store like any other sink; a study bracket replaces previous
  // contents. Batched and per-record capture produce identical stores.
  void on_study_begin(const StudyMeta& meta) override;
  void on_user_begin(UserId user) override;
  void on_packet(const PacketRecord& packet) override;
  void on_transition(const StateTransition& transition) override;
  void on_user_end(UserId user) override;
  void on_study_end() override;
  void on_batch(const EventBatch& batch) override;

  // -- replay (TraceSource) -------------------------------------------------
  util::Status emit(TraceSink& sink, std::size_t batch_size) override;
  util::Status emit_user(UserId user, TraceSink& sink, std::size_t batch_size) override;
  [[nodiscard]] StudyMeta meta() const override { return meta_; }
  [[nodiscard]] bool supports_user_access() const override { return true; }
  /// User ids in arrival (stream) order — for generator-derived studies this
  /// is ascending user id, which is also the shard-merge order.
  [[nodiscard]] std::vector<UserId> users() const override;

  // -- introspection (StoreBackend) -----------------------------------------
  [[nodiscard]] bool empty() const override { return users_.empty() && meta_.num_users == 0; }
  [[nodiscard]] std::size_t num_users() const override { return users_.size(); }
  /// Total captured events (packets + transitions) across all users.
  [[nodiscard]] std::uint64_t event_count() const override;
  /// Approximate footprint: counts column and index *capacity* (allocation
  /// slack from growth is real resident memory), so spill budgets and
  /// RunStats::MemoryStats never undercount. Nothing spills in this backend.
  [[nodiscard]] obs::MemoryUse memory_use() const override;
  /// One user's full column set (testing / direct consumers).
  [[nodiscard]] const EventBatch* find_user(UserId user) const;

  void clear() override;

 private:
  /// Stream one user's columns into `sink` between its user brackets.
  void replay_user(const EventBatch& events, TraceSink& sink, std::size_t batch_size) const;

  StudyMeta meta_;
  std::vector<EventBatch> users_;        ///< one full column set per user, arrival order
  std::map<UserId, std::size_t> index_;  ///< user id -> users_ position
  EventBatch* current_ = nullptr;        ///< capture target inside a user bracket
};

}  // namespace wildenergy::trace
