#include "core/sweep.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/shard_chain.h"
#include "fault/plan.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "radio/burst_machine.h"
#include "trace/shardable.h"
#include "util/thread_pool.h"

namespace wildenergy::core {

SweepEngine::SweepEngine(trace::TraceSource* base, SweepOptions options)
    : base_(base), store_(&owned_store_), options_(options) {}

SweepEngine::SweepEngine(trace::TraceStore* store, SweepOptions options)
    : store_(store), options_(options) {}

void SweepEngine::add_scenario(Scenario scenario) {
  scenarios_.push_back(std::move(scenario));
}

const ScenarioResult* SweepEngine::result(std::string_view name) const {
  for (const auto& r : results_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

util::Status SweepEngine::ensure_captured() {
  if (!store_->empty()) return util::Status::ok_status();  // simulate once
  if (base_ == nullptr) {
    return util::Status::failed_precondition(
        "sweep store is empty and no base source was given");
  }
  return store_->capture(*base_, options_.batch_size);
}

util::StatusOr<obs::RunStats> SweepEngine::run() {
  obs::Stopwatch total;
  if (const util::Status captured = ensure_captured(); !captured.ok()) return captured;

  const trace::StudyMeta meta = store_->meta();
  const std::vector<trace::UserId> user_ids = store_->users();
  const std::size_t num_users = user_ids.size();
  const std::size_t num_scenarios = scenarios_.size();

  // Results are rebuilt per run; the ledgers living here are the shardable
  // parents the per-shard clones merge back into, so the vector must not
  // reallocate once chains hold pointers to them — size it up front.
  results_.clear();
  results_.resize(num_scenarios);

  // Per-scenario sink split and per-(scenario, user) chains, built serially
  // up front (policy factories and clone_shard() need not be thread-safe).
  struct ScenarioPlan {
    internal::ChainConfig config;
    /// Adapters wrapping non-shardable custom analyses (collect-splice,
    /// core/shard_chain.h); counted in serial_fallback_sinks.
    std::vector<std::unique_ptr<internal::CollectSpliceSink>> adapters;
    std::vector<trace::ShardableSink*> shardable;
    std::vector<trace::TraceSink*> sharded_parents;
    std::vector<std::unique_ptr<internal::ShardChain>> shards;  ///< one per user
  };
  std::vector<ScenarioPlan> plans(num_scenarios);
  for (std::size_t si = 0; si < num_scenarios; ++si) {
    const Scenario& scenario = scenarios_[si];
    results_[si].name = scenario.name;
    ScenarioPlan& plan = plans[si];
    plan.config = internal::ChainConfig{
        scenario.radio_factory ? scenario.radio_factory : radio::make_lte_model,
        scenario.tail_policy, scenario.policy, scenario.interface, options_.fault_plan,
        options_.collect_stage_stats, {}};
    // Ledger first, matching the pipeline fan-out order.
    std::vector<std::pair<std::string, trace::TraceSink*>> sinks;
    sinks.emplace_back("ledger", &results_[si].ledger);
    for (const auto& [name, sink] : scenario.analyses) sinks.emplace_back(name, sink);
    for (const auto& [name, sink] : sinks) {
      if (auto* s = trace::as_shardable(sink)) {
        plan.shardable.push_back(s);
        plan.sharded_parents.push_back(sink);
      } else {
        plan.adapters.push_back(std::make_unique<internal::CollectSpliceSink>(sink));
        plan.shardable.push_back(plan.adapters.back().get());
        plan.sharded_parents.push_back(plan.adapters.back().get());
      }
      plan.config.sink_names.push_back(name);
    }
    results_[si].stats.serial_fallback_sinks = plan.adapters.size();
    plan.shards.reserve(num_users);
    for (const trace::UserId user : user_ids) {
      plan.shards.push_back(internal::build_chain(plan.config, plan.shardable, user));
    }
  }

  // Flat (scenario × user) task space on ONE pool — scenario-major, so task
  // index maps to (index / num_users, index % num_users). Replay is const
  // over the store's columns, so any number of workers can read one user
  // concurrently across scenarios.
  const bool retry_then_skip = options_.failure_policy == FailurePolicy::kRetryThenSkip;
  const std::size_t total_shards = num_scenarios * num_users;
  // Progress reporting: first-attempt completions, serialized under a mutex
  // so the callback never runs concurrently with itself.
  std::mutex progress_mu;
  std::size_t progress_done = 0;
  const auto report_progress = [&](std::size_t si, trace::UserId user) {
    if (!options_.progress) return;
    const std::lock_guard<std::mutex> lock{progress_mu};
    ++progress_done;
    options_.progress(SweepProgress{progress_done, total_shards, si, user});
  };
  if (total_shards > 0) {
    const unsigned pool_threads = std::max<unsigned>(
        1, std::min<unsigned>(options_.num_threads,
                              static_cast<unsigned>(std::min<std::size_t>(
                                  total_shards, 1u << 16))));
    util::ThreadPool pool{pool_threads};
    pool.run_indexed(total_shards, [&](std::size_t index, unsigned worker) {
      const std::size_t si = index / num_users;
      const std::size_t ui = index % num_users;
      internal::ShardChain& shard = *plans[si].shards[ui];
      // Shard-local metrics: each scenario's radio model counts into its own
      // shard registry (summed per scenario below).
      const obs::ScopedMetricsRegistry scoped{&shard.registry};
      shard.worker = worker;
      ++shard.attempts;
      const obs::Stopwatch watch;
      if (retry_then_skip) {
        try {
          shard.error = store_->emit_user(user_ids[ui], *shard.entry, options_.batch_size);
        } catch (const std::exception& e) {
          shard.error = util::Status::aborted(e.what());
        }
      } else {
        // kFailFast: the pool rethrows the first exception out of run().
        const util::Status st =
            store_->emit_user(user_ids[ui], *shard.entry, options_.batch_size);
        if (!st.ok()) throw std::runtime_error(st.to_string());
      }
      shard.wall_ms = watch.elapsed_ms();
      report_progress(si, user_ids[ui]);
    });
  }

  // Per-scenario: serial retries, deterministic merge in stream order,
  // stats. Exactly the pipeline's discipline, applied K times.
  obs::RunStats aggregate;
  for (std::size_t si = 0; si < num_scenarios; ++si) {
    ScenarioPlan& plan = plans[si];
    ScenarioResult& res = results_[si];

    if (retry_then_skip) {
      for (std::size_t ui = 0; ui < num_users; ++ui) {
        const trace::UserId user = user_ids[ui];
        internal::ShardChain* shard = plan.shards[ui].get();
        for (unsigned retry = 0; !shard->error.ok() && retry < options_.max_shard_retries;
             ++retry) {
          auto fresh = internal::build_chain(plan.config, plan.shardable, user);
          fresh->worker = shard->worker;
          fresh->attempts = shard->attempts + 1;
          ++res.stats.shard_retries;
          const obs::ScopedMetricsRegistry scoped{&fresh->registry};
          const obs::Stopwatch watch;
          try {
            fresh->error = store_->emit_user(user, *fresh->entry, options_.batch_size);
          } catch (const std::exception& e) {
            fresh->error = util::Status::aborted(e.what());
          }
          fresh->wall_ms = watch.elapsed_ms();
          plan.shards[ui] = std::move(fresh);
          shard = plan.shards[ui].get();
        }
        if (!shard->error.ok()) res.stats.failed_users.push_back(user);
      }
    }

    // Per-shard ledger totals for ShardRunStats, snapshotted before the
    // merge (merge_from moves the clone's state into the parent).
    struct ShardTotals {
      std::uint64_t packets = 0;
      std::uint64_t bytes = 0;
      double joules = 0.0;
    };
    std::vector<ShardTotals> shard_totals(num_users);
    for (std::size_t ui = 0; ui < num_users; ++ui) {
      const internal::ShardChain& shard = *plan.shards[ui];
      if (!shard.error.ok()) continue;
      const auto& shard_ledger =
          dynamic_cast<const energy::EnergyLedger&>(*shard.clones[0]);  // ledger is sinks[0]
      shard_totals[ui] = {shard_ledger.total_packets(), shard_ledger.total_bytes(),
                          shard_ledger.total_joules()};
    }

    // Merge in stream (user-id) order, skipping failed shards. The parent
    // attributor exists only to fold the scenario's attribution counters in
    // the same order a standalone pipeline would.
    trace::TraceMulticast parent_fanout;  // stays empty
    energy::EnergyAttributor parent_attributor{plan.config.radio_factory, &parent_fanout,
                                               plan.config.tail_policy};
    parent_attributor.on_study_begin(meta);
    for (auto* parent : plan.sharded_parents) parent->on_study_begin(meta);
    std::uint64_t dropped_packets = 0;
    std::uint64_t dropped_bytes = 0;
    for (std::size_t ui = 0; ui < num_users; ++ui) {
      internal::ShardChain& shard = *plan.shards[ui];
      if (!shard.error.ok()) continue;  // skipped user: nothing of it survives
      parent_attributor.merge_from(*shard.attributor);
      for (std::size_t i = 0; i < plan.shardable.size(); ++i) {
        plan.shardable[i]->merge_from(*shard.clones[i]);
      }
      dropped_packets += shard.filter->dropped_packets();
      dropped_bytes += shard.filter->dropped_bytes();
      res.stats.radio_bursts += shard.registry.counter_value("radio.bursts");
      res.stats.radio_bursts_queued += shard.registry.counter_value("radio.bursts_queued");
      res.stats.radio_promotions += shard.registry.counter_value("radio.promotions");
      res.stats.radio_repromotions += shard.registry.counter_value("radio.repromotions");
      obs::MetricsRegistry::global().merge_from(shard.registry);
    }
    for (auto* parent : plan.sharded_parents) parent->on_study_end();

    res.stats.num_threads = options_.num_threads;
    res.stats.users = static_cast<std::uint64_t>(num_users);
    res.stats.packets = res.ledger.total_packets();
    res.stats.bytes = res.ledger.total_bytes();
    res.stats.joules = res.ledger.total_joules();
    res.stats.off_interface_packets = dropped_packets;
    res.stats.off_interface_bytes = dropped_bytes;
    const energy::AttributionCounters& ac = parent_attributor.counters();
    res.stats.transitions = ac.transitions;
    res.stats.tail_attributions = ac.tail_attributions;
    res.stats.proportional_splits = ac.proportional_splits;
    res.stats.promotion_segments = ac.promotion_segments;
    res.stats.transfer_segments = ac.transfer_segments;
    res.stats.tail_segments = ac.tail_segments;
    res.stats.drx_segments = ac.drx_segments;
    res.stats.idle_segments = ac.idle_segments;

    res.stats.shards.reserve(num_users);
    for (std::size_t ui = 0; ui < num_users; ++ui) {
      const internal::ShardChain& shard = *plan.shards[ui];
      obs::ShardRunStats s;
      s.user = user_ids[ui];
      s.worker = shard.worker;
      s.wall_ms = shard.wall_ms;
      s.attempts = std::max(1u, shard.attempts);
      s.skipped = !shard.error.ok();
      s.status = shard.error;
      if (options_.collect_stage_stats) s.stages = shard.stage_stats();
      if (!s.skipped) {
        s.packets = shard_totals[ui].packets;
        s.bytes = shard_totals[ui].bytes;
        s.joules = shard_totals[ui].joules;
      }
      res.stats.shards.push_back(s);
    }

    // Fold the per-shard stage profiles into the scenario profile, in
    // user-id order over surviving shards — the same fold as
    // StudyPipeline::run_sharded. The "replay" row is per-shard wall time
    // the stages did not account for (store replay + dispatch).
    res.stats.timed = options_.collect_stage_stats;
    if (options_.collect_stage_stats) {
      obs::StageStats replay;
      replay.name = "replay";
      std::vector<obs::StageStats> folded;
      for (const obs::ShardRunStats& s : res.stats.shards) {
        if (s.skipped || s.stages.empty()) continue;
        double accounted_ms = 0.0;
        for (const auto& st : s.stages) accounted_ms += st.self_ms;
        replay.self_ms += std::max(0.0, s.wall_ms - accounted_ms);
        if (folded.empty()) folded.resize(s.stages.size());
        for (std::size_t i = 0; i < s.stages.size() && i < folded.size(); ++i) {
          folded[i].merge_from(s.stages[i]);
        }
      }
      replay.packets = res.stats.packets + res.stats.off_interface_packets;
      replay.transitions = res.stats.transitions;
      replay.bytes = res.stats.bytes + res.stats.off_interface_bytes;
      res.stats.stages.push_back(replay);
      for (auto& st : folded) res.stats.stages.push_back(std::move(st));
    }

    // Per-scenario memory accounting; the store is shared by every scenario.
    res.stats.memory.ledger_bytes = res.ledger.memory_bytes();
    for (const auto& [name, sink] : scenarios_[si].analyses) {
      res.stats.memory.analyses_bytes += sink->memory_bytes();
    }
    res.stats.memory.store_bytes = store_->memory_bytes();
    res.stats.memory.peak_rss_bytes = obs::peak_rss_bytes();

    aggregate.packets += res.stats.packets;
    aggregate.transitions += res.stats.transitions;
    aggregate.bytes += res.stats.bytes;
    aggregate.joules += res.stats.joules;
    aggregate.off_interface_packets += res.stats.off_interface_packets;
    aggregate.off_interface_bytes += res.stats.off_interface_bytes;
    aggregate.shard_retries += res.stats.shard_retries;
    aggregate.serial_fallback_sinks += res.stats.serial_fallback_sinks;
    aggregate.radio_bursts += res.stats.radio_bursts;
    aggregate.radio_bursts_queued += res.stats.radio_bursts_queued;
    aggregate.radio_promotions += res.stats.radio_promotions;
    aggregate.radio_repromotions += res.stats.radio_repromotions;
    aggregate.memory.ledger_bytes += res.stats.memory.ledger_bytes;
    aggregate.memory.analyses_bytes += res.stats.memory.analyses_bytes;
  }

  aggregate.num_threads = options_.num_threads;
  aggregate.users = static_cast<std::uint64_t>(num_users);
  aggregate.wall_ms = total.elapsed_ms();
  aggregate.memory.store_bytes = store_->memory_bytes();
  aggregate.memory.peak_rss_bytes = obs::peak_rss_bytes();
  return aggregate;
}

}  // namespace wildenergy::core
