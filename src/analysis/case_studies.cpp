#include "analysis/case_studies.h"

#include <algorithm>
#include <cmath>

namespace wildenergy::analysis {

CaseStudyAnalysis::CaseStudyAnalysis(std::vector<trace::AppId> apps)
    : apps_(std::move(apps)),
      assembler_([this](const trace::FlowRecord& flow) { on_flow(flow); }) {
  trace::AppId max_app = 0;
  for (trace::AppId app : apps_) max_app = std::max(max_app, app);
  tracked_index_.assign(apps_.empty() ? 0 : max_app + 1, kUntracked);
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    tracked_index_[apps_[i]] = static_cast<std::uint32_t>(i);
  }
}

void CaseStudyAnalysis::on_study_begin(const trace::StudyMeta& meta) {
  meta_ = meta;
  const auto num_days = static_cast<std::int64_t>(std::ceil(meta.span().days()));
  era_split_lo_ = num_days / 3;
  era_split_hi_ = num_days - num_days / 3;
  cur_user_ = kNoUser;
  per_app_.assign(apps_.size(), PerApp{});
  for (PerApp& pa : per_app_) {
    pa.joules_by_user.resize(meta.num_users, 0.0);
    pa.joules_touched.resize(meta.num_users, false);
    pa.active_day.assign(static_cast<std::size_t>(meta.num_users) *
                             static_cast<std::size_t>(std::max<std::int64_t>(num_days, 1)),
                         false);
  }
  assembler_.on_study_begin(meta);
}

CaseStudyAnalysis::PerApp* CaseStudyAnalysis::slot(trace::AppId app) {
  if (app >= tracked_index_.size()) return nullptr;
  const std::uint32_t index = tracked_index_[app];
  if (index == kUntracked || index >= per_app_.size()) return nullptr;
  return &per_app_[index];
}

void CaseStudyAnalysis::switch_user(trace::UserId user) {
  for (PerApp& pa : per_app_) pa.has_last_flow = false;
  cur_user_ = user;
}

void CaseStudyAnalysis::on_user_begin(trace::UserId user) {
  switch_user(user);
  assembler_.on_user_begin(user);
}

void CaseStudyAnalysis::on_packet(const trace::PacketRecord& p) {
  if (trace::is_foreground(p.state)) return;  // Table 1 is about background transfers
  PerApp* pa = slot(p.app);
  if (pa == nullptr) return;
  if (p.user != cur_user_) switch_user(p.user);
  if (p.user >= pa->joules_by_user.size()) {
    pa->joules_by_user.resize(p.user + 1, 0.0);
    pa->joules_touched.resize(p.user + 1, false);
  }
  pa->joules_by_user[p.user] += p.joules;
  pa->joules_touched[p.user] = true;
  pa->bytes += p.bytes;
  const std::size_t num_users = std::max<std::size_t>(meta_.num_users, 1);
  const std::size_t num_days = std::max<std::size_t>(pa->active_day.size() / num_users, 1);
  const auto day = static_cast<std::size_t>(
      std::clamp<std::int64_t>((p.time - meta_.study_begin).us / 86'400'000'000LL, 0,
                               static_cast<std::int64_t>(num_days) - 1));
  const std::size_t cell = p.user * num_days + day;
  if (cell >= pa->active_day.size()) pa->active_day.resize(cell + 1, false);
  pa->active_day[cell] = true;
  assembler_.on_packet(p);
}

void CaseStudyAnalysis::on_transition(const trace::StateTransition&) {}

void CaseStudyAnalysis::on_user_end(trace::UserId user) {
  assembler_.on_user_end(user);
  for (PerApp& pa : per_app_) pa.has_last_flow = false;
  cur_user_ = kNoUser;
}

void CaseStudyAnalysis::on_study_end() {}

std::unique_ptr<trace::TraceSink> CaseStudyAnalysis::clone_shard() const {
  return std::make_unique<CaseStudyAnalysis>(apps_);
}

void CaseStudyAnalysis::merge_from(trace::TraceSink& shard) {
  auto& other = dynamic_cast<CaseStudyAnalysis&>(shard);
  for (std::size_t i = 0; i < per_app_.size() && i < other.per_app_.size(); ++i) {
    PerApp& mine = per_app_[i];
    const PerApp& theirs = other.per_app_[i];
    if (theirs.joules_by_user.size() > mine.joules_by_user.size()) {
      mine.joules_by_user.resize(theirs.joules_by_user.size(), 0.0);
      mine.joules_touched.resize(theirs.joules_by_user.size(), false);
    }
    for (trace::UserId user = 0; user < theirs.joules_by_user.size(); ++user) {
      if (!theirs.joules_touched[user]) continue;
      mine.joules_by_user[user] += theirs.joules_by_user[user];
      mine.joules_touched[user] = true;
    }
    mine.bytes += theirs.bytes;
    mine.flows += theirs.flows;
    if (mine.active_day.size() < theirs.active_day.size()) {
      mine.active_day.resize(theirs.active_day.size());
    }
    for (std::size_t d = 0; d < theirs.active_day.size(); ++d) {
      if (theirs.active_day[d]) mine.active_day[d] = true;
    }
    mine.early_gaps.merge_from(theirs.early_gaps);
    mine.late_gaps.merge_from(theirs.late_gaps);
  }
}

void CaseStudyAnalysis::save_state(ckpt::ByteWriter& out) const {
  out.put_varint(per_app_.size());
  for (const PerApp& pa : per_app_) {
    out.put_f64_span(pa.joules_by_user);
    out.put_bool_vec(pa.joules_touched);
    out.put_varint(pa.bytes);
    out.put_varint(pa.flows);
    out.put_bool_vec(pa.active_day);
    out.put_f64_span(pa.early_gaps.samples());
    out.put_f64_span(pa.late_gaps.samples());
  }
}

util::Status CaseStudyAnalysis::restore_state(ckpt::ByteReader& in) {
  auto num_apps = in.get_varint("case_studies.apps");
  if (!num_apps.ok()) return num_apps.status();
  if (*num_apps != per_app_.size()) {
    return util::Status::data_loss("corrupt checkpoint: case_studies tracks " +
                                   std::to_string(per_app_.size()) + " apps, snapshot holds " +
                                   std::to_string(*num_apps));
  }
  const auto read_samples = [&in](Distribution& dist,
                                  std::string_view field) -> util::Status {
    auto samples = in.get_f64_vec(field);
    if (!samples.ok()) return samples.status();
    dist.restore_samples(std::move(*samples));
    return util::Status::ok_status();
  };
  for (PerApp& pa : per_app_) {
    auto joules = in.get_f64_vec("case_studies.joules_by_user");
    if (!joules.ok()) return joules.status();
    pa.joules_by_user = std::move(*joules);
    auto status = in.get_bool_vec(pa.joules_touched, "case_studies.joules_touched");
    if (!status.ok()) return status;
    auto bytes = in.get_varint("case_studies.bytes");
    if (!bytes.ok()) return bytes.status();
    pa.bytes = *bytes;
    auto flows = in.get_varint("case_studies.flows");
    if (!flows.ok()) return flows.status();
    pa.flows = *flows;
    status = in.get_bool_vec(pa.active_day, "case_studies.active_day");
    if (!status.ok()) return status;
    status = read_samples(pa.early_gaps, "case_studies.early_gaps");
    if (!status.ok()) return status;
    status = read_samples(pa.late_gaps, "case_studies.late_gaps");
    if (!status.ok()) return status;
    pa.has_last_flow = false;
  }
  return util::Status::ok_status();
}

void CaseStudyAnalysis::on_flow(const trace::FlowRecord& flow) {
  PerApp* pa = slot(flow.app);
  if (pa == nullptr) return;
  pa->flows += 1;
  if (pa->has_last_flow) {
    const double gap_s = (flow.first_packet - pa->last_flow_start).seconds();
    // Gaps above two days are app-dormancy, not an update period.
    if (gap_s > 0 && gap_s < 2.0 * 86400.0) {
      const std::int64_t day = (flow.first_packet - meta_.study_begin).us / 86'400'000'000LL;
      if (day < era_split_lo_) {
        pa->early_gaps.add(gap_s);
      } else if (day >= era_split_hi_) {
        pa->late_gaps.add(gap_s);
      }
    }
  }
  pa->last_flow_start = flow.first_packet;
  pa->has_last_flow = true;
}

CaseStudyResult CaseStudyAnalysis::result(trace::AppId app) {
  CaseStudyResult out;
  out.app = app;
  PerApp* pa = slot(app);
  if (pa == nullptr) return out;
  for (trace::UserId user = 0; user < pa->joules_by_user.size(); ++user) {
    if (pa->joules_touched[user]) out.joules_total += pa->joules_by_user[user];
  }
  out.bytes_total = pa->bytes;
  out.flows = pa->flows;
  out.days_active = static_cast<std::uint64_t>(
      std::count(pa->active_day.begin(), pa->active_day.end(), true));
  out.early_period_s = estimate_period_from_gaps(pa->early_gaps.sorted_samples()).period_s;
  out.late_period_s = estimate_period_from_gaps(pa->late_gaps.sorted_samples()).period_s;
  return out;
}

std::uint64_t CaseStudyAnalysis::memory_bytes() const {
  std::uint64_t total = tracked_index_.capacity() * sizeof(std::uint32_t);
  for (const PerApp& pa : per_app_) {
    total += pa.joules_by_user.capacity() * sizeof(double) +
             (pa.joules_touched.capacity() + 7) / 8 + (pa.active_day.capacity() + 7) / 8 +
             (pa.early_gaps.count() + pa.late_gaps.count()) * sizeof(double);
  }
  return total;
}

}  // namespace wildenergy::analysis
