#include "analysis/whatif.h"

#include <algorithm>
#include <unordered_map>

namespace wildenergy::analysis {

namespace {

/// Days (since the user's last foreground-traffic day) after which the
/// policy suppresses a day's background energy.
bool day_suppressed(std::int64_t days_since_fg, std::int64_t idle_days) {
  return days_since_fg > idle_days;
}

/// Walk one account's day cells and report which days the policy suppresses.
template <typename Fn>
void for_each_suppressed_day(const energy::AppUserAccount& acc, std::int64_t idle_days, Fn&& fn) {
  std::int64_t days_since_fg = idle_days;  // study start counts as "not recently used"
  for (std::size_t d = 0; d < acc.days.size(); ++d) {
    const energy::DayCell& cell = acc.days[d];
    if (cell.fg_bytes > 0) {
      days_since_fg = 0;
    } else {
      ++days_since_fg;
    }
    if (day_suppressed(days_since_fg, idle_days)) fn(d, cell);
  }
}

}  // namespace

WhatIfRow whatif_kill_after(const energy::EnergyLedger& ledger, trace::AppId app,
                            std::int64_t idle_days) {
  WhatIfRow row;
  row.app = app;

  std::uint64_t traffic_days = 0;
  std::uint64_t bg_only_days = 0;
  std::uint64_t total_days = 0;
  double sum_user_pct = 0.0;

  for (const auto& acc : ledger.accounts()) {
    if (acc.app != app || acc.joules <= 0.0) continue;
    ++row.users_with_app;

    // Rows A and B. A is the fraction of study days with only background
    // traffic; B counts consecutive such days, in stretches bounded by
    // foreground use (paper: "only time periods where there is foreground
    // traffic at the beginning and end").
    std::int64_t run = 0;       // current run of background-only days
    bool run_anchored = false;  // run started after a fg day (row B bound)
    total_days += static_cast<std::uint64_t>(acc.days.size());
    for (const auto& cell : acc.days) {
      if (cell.fg_bytes > 0) {
        if (run_anchored) {
          row.max_consecutive_bg_days = std::max(row.max_consecutive_bg_days, run);
        }
        run = 0;
        run_anchored = true;
        ++traffic_days;
      } else if (cell.bg_bytes > 0) {
        ++run;
        ++traffic_days;
        ++bg_only_days;
      } else {
        run = 0;  // a silent day breaks the consecutive-bg-days run
      }
    }

    // Row C: suppress background energy once idle for > idle_days.
    double saved = 0.0;
    for_each_suppressed_day(acc, idle_days,
                            [&](std::size_t, const energy::DayCell& cell) {
                              saved += cell.bg_joules;
                            });
    row.saved_joules += saved;
    row.total_joules += acc.joules;
    sum_user_pct += 100.0 * saved / acc.joules;
  }

  (void)traffic_days;
  if (total_days > 0) {
    row.pct_days_background_only =
        100.0 * static_cast<double>(bg_only_days) / static_cast<double>(total_days);
  }
  if (row.users_with_app > 0) {
    row.pct_energy_saved = sum_user_pct / row.users_with_app;
  }
  return row;
}

OverallWhatIf whatif_overall(const energy::EnergyLedger& ledger, std::int64_t idle_days) {
  OverallWhatIf out;
  out.total_joules = ledger.total_joules();
  for (const auto& acc : ledger.accounts()) {
    for_each_suppressed_day(acc, idle_days, [&](std::size_t, const energy::DayCell& cell) {
      out.saved_joules += cell.bg_joules;
    });
  }
  return out;
}

double pct_saved_on_affected_days(const energy::EnergyLedger& ledger, trace::AppId app,
                                  std::int64_t idle_days) {
  // Per-user-per-day whole-device energy, for the denominators.
  std::unordered_map<trace::UserId, std::vector<double>> device_day_joules;
  for (const auto& acc : ledger.accounts()) {
    auto& days = device_day_joules[acc.user];
    if (days.size() < acc.days.size()) days.resize(acc.days.size(), 0.0);
    for (std::size_t d = 0; d < acc.days.size(); ++d) {
      days[d] += acc.days[d].fg_joules + acc.days[d].bg_joules;
    }
  }

  double saved = 0.0;
  double device_total_on_affected_days = 0.0;
  for (const auto& acc : ledger.accounts()) {
    if (acc.app != app || acc.joules <= 0.0) continue;
    const auto& days = device_day_joules[acc.user];
    for_each_suppressed_day(acc, idle_days, [&](std::size_t d, const energy::DayCell& cell) {
      if (cell.bg_joules <= 0.0) return;  // only days where suppression bites
      saved += cell.bg_joules;
      device_total_on_affected_days += days[d];
    });
  }
  return device_total_on_affected_days > 0 ? 100.0 * saved / device_total_on_affected_days : 0.0;
}

}  // namespace wildenergy::analysis
