// StudyPipeline: the top-level façade tying the whole system together.
//
//   trace source (trace/trace_source.h)
//                     ->  [optional policy filter (core/policy.h)]
//                     ->  energy attribution (energy/attributor.h)
//                     ->  ledger + user-registered analyses
//
// The source is anything emitting the canonical event stream — a
// sim::StudyGenerator, a file reader (trace/csv_io.h, trace/binary_io.h),
// or a cached trace::TraceStore — one execution engine for live simulation
// and replay alike. The pipeline never owns its source: the caller holds it
// (and its catalog), so source lifetime and app-name lookups are explicit
// at every call site.
//
// Typical use (see examples/quickstart.cpp):
//
//   sim::StudyGenerator generator{sim::small_study()};
//   core::StudyPipeline pipeline{&generator};
//   analysis::PersistenceAnalysis persistence;     // any TraceSink
//   pipeline.add_analysis(&persistence);
//   auto stats = pipeline.run();                   // StatusOr<obs::RunStats>
//   auto breakdown = analysis::overall_state_breakdown(pipeline.ledger());
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "energy/account_file.h"
#include "energy/attributor.h"
#include "energy/ledger.h"
#include "obs/run_stats.h"
#include "obs/trace_writer.h"
#include "trace/batch.h"
#include "trace/sink.h"
#include "trace/trace_source.h"
#include "util/status.h"

namespace wildenergy::fault {
class FaultPlan;
}  // namespace wildenergy::fault

namespace wildenergy::core {

/// Builds a policy filter (core/policy.h) given the downstream sink the
/// filter must forward to. Shared by StudyPipeline::set_policy and
/// Scenario::policy (core/sweep.h).
using PolicyFactory = std::function<std::unique_ptr<trace::TraceSink>(trace::TraceSink*)>;

/// What a throwing shard means for the rest of the run.
enum class FailurePolicy : std::uint8_t {
  /// Propagate the first shard failure out of run() (the pre-PR-3 behavior).
  kFailFast = 0,
  /// Retry the failed shard up to max_shard_retries times (re-running a
  /// shard is deterministic by construction); if it still fails, skip that
  /// user, record the failure in RunStats (failed_users, shard_retries,
  /// per-shard status), and keep going. The merged result is bit-identical
  /// to a serial run over the surviving users.
  kRetryThenSkip,
};

struct PipelineOptions {
  /// Radio model per user device; defaults to LTE (set in pipeline.cpp).
  energy::RadioModelFactory radio_factory;
  /// Tail-energy attribution rule (paper rule by default).
  energy::TailPolicy tail_policy = energy::TailPolicy::kLastPacket;
  /// Interface under analysis; non-matching packets are dropped before
  /// attribution (paper §3: the analyses are cellular-only).
  trace::Interface interface = trace::Interface::kCellular;
  /// Profile each stage's self time and per-sink throughput during run()
  /// (obs::RunStats::stages). Off by default: it costs two clock reads per
  /// callback per stage; totals and counters are collected regardless.
  bool collect_stage_stats = false;
  /// Optional Chrome-trace span export (implies stage profiling). Non-owning;
  /// must outlive run(). Load the written file at https://ui.perfetto.dev.
  obs::TraceWriter* trace_writer = nullptr;
  /// Worker threads for the sharded execution engine. 1 (default) runs the
  /// classic single-pass serial pipeline; N > 1 runs one shard per user on
  /// min(N, num_users) pool workers and merges results in user-id order.
  /// Every output is bit-identical for every value (see trace/shardable.h).
  /// With N > 1 the radio factory must be safe to invoke concurrently.
  unsigned num_threads = 1;
  /// Shard failure handling. kRetryThenSkip (like a non-empty fault_plan)
  /// routes the run through the sharded engine even when num_threads == 1,
  /// because retry/skip needs per-user isolation; outputs stay bit-identical
  /// across thread counts either way.
  FailurePolicy failure_policy = FailurePolicy::kFailFast;
  /// Extra attempts a failed shard gets under kRetryThenSkip before its
  /// user is skipped.
  unsigned max_shard_retries = 2;
  /// Scripted shard faults for tests/benches/CLI (--inject-fault).
  /// Non-owning; must outlive run(). Under kFailFast an injected fault
  /// propagates out of run() as fault::ShardFault.
  fault::FaultPlan* fault_plan = nullptr;
  /// Events per EventBatch on the source -> sinks path (both serial and
  /// sharded engines). 0 streams per record (the classic path). Outputs are
  /// bit-identical for every value — batching only amortizes dispatch
  /// (trace/batch.h); the shared default (trace::kDefaultBatchSize, also
  /// used by trace::ReadOptions and the CLI --batch-size flag) is a
  /// cache-friendly span that measures well on the micro_pipeline sweep.
  std::size_t batch_size = trace::kDefaultBatchSize;
  /// Directory for crash-recovery checkpoints (src/ckpt/, CLI
  /// --checkpoint-dir). Empty (default) disables checkpointing. When set,
  /// every registered sink must implement ckpt::CheckpointableSink (the
  /// default analysis set does) — run() refuses otherwise, naming the sink.
  /// Random-access sources checkpoint through the sharded engine in epochs
  /// of checkpoint_every_users; forward-only sources snapshot mid-stream at
  /// the same cadence. A checkpointed run's outputs are bit-identical to an
  /// unchecked one at every thread count.
  std::string checkpoint_dir;
  /// Completed users between checkpoints (CLI --checkpoint-every). Clamped
  /// up to 1.
  std::size_t checkpoint_every_users = 4;
  /// Resume from the newest good checkpoint in checkpoint_dir: completed
  /// users are skipped, their partial sink state is folded back in, and the
  /// finished run is bit-identical to an uninterrupted one. A missing,
  /// corrupt, or stale (different study/sink set) checkpoint fails run()
  /// with a positioned status — resume never silently restarts from zero.
  bool resume = false;
  /// Directory for spilled per-user account detail rows (CLI --account-dir).
  /// Empty (default) keeps every sink fully resident — the classic
  /// lifecycle. When set, the run goes fold-and-release (DESIGN.md §15):
  /// after each user's stream completes, the engine folds every opted-in
  /// sink (attributor, ledger, analyses), the folded detail rows spill to
  /// WEAC account files under this directory, and the per-user slabs are
  /// freed — so resident detail memory stays bounded by the spill budget
  /// instead of growing with the population. Aggregates and every
  /// cursor-based figure are bit-identical to a resident run. Resuming a
  /// checkpointed fold run must pass the same directory.
  std::string account_dir;
  /// Soft budget for the account spill plane (CLI --account-budget); the
  /// pending writer seals to disk as it fills so resident account bytes
  /// stay under it. 0 applies the AccountSpill default. Requires
  /// account_dir.
  std::uint64_t account_budget_bytes = 0;
};

class StudyPipeline {
 public:
  /// Run over a trace source (caller-owned sim::StudyGenerator, file
  /// reader, or cached TraceStore). Non-owning; must outlive the pipeline.
  /// Forward-only sources (supports_user_access() == false) always run the
  /// serial engine regardless of num_threads, and scripted fault plans /
  /// retry policies — which need per-user isolation — do not apply to them.
  explicit StudyPipeline(trace::TraceSource* source, PipelineOptions options = {});

  /// Register an analysis sink that receives the energy-annotated stream.
  /// Non-owning; must outlive run(). The named overload labels the sink in
  /// RunStats::stages and trace spans; the unnamed one auto-numbers it.
  void add_analysis(trace::TraceSink* sink);
  void add_analysis(std::string name, trace::TraceSink* sink);

  /// Install a policy filter between the source and attribution. The
  /// factory receives the downstream sink the filter must forward to, and
  /// the pipeline keeps the filter alive. Call before run().
  using PolicyFactory = core::PolicyFactory;
  void set_policy(PolicyFactory factory);

  /// Stream + attribute + analyze. May be called repeatedly; each run
  /// resets the ledger and re-streams the study. With num_threads > 1 the
  /// study is sharded by user across a worker pool; results (ledger,
  /// analyses, figures) are bit-identical to the serial run.
  ///
  /// Returns the run's RunStats, or the source's error when it failed to
  /// emit (unreadable file, corrupt stream under a strict read policy).
  /// Under FailurePolicy::kFailFast a shard failure still propagates as an
  /// exception (fault::ShardFault); under kRetryThenSkip exhausted shards
  /// are reported inside the returned stats, not as an error.
  util::StatusOr<obs::RunStats> run();

  [[nodiscard]] const energy::EnergyLedger& ledger() const { return ledger_; }
  /// Bytes on the non-analyzed interface, dropped before attribution.
  [[nodiscard]] std::uint64_t off_interface_bytes() const { return off_interface_bytes_; }
  /// The trace source this pipeline streams from.
  [[nodiscard]] trace::TraceSource& source() const { return *source_; }
  [[nodiscard]] const energy::EnergyAttributor& attributor() const { return attributor_; }

 private:
  /// The classic single-pass serial pipeline (num_threads == 1, or any
  /// forward-only source). Returns the source's emit status.
  util::Status run_serial();
  /// One fold-and-release round for a completed user: bracket the spill row
  /// group and fold the attributor, the ledger, then every shardable
  /// analysis in registration order. Only called when account_spill_ is
  /// armed; both engines fire it in stream order (ascending user id).
  void fold_round(trace::UserId user);
  /// One shard per user (in `user_ids` stream order) on `num_threads`
  /// workers; deterministic merge in stream order. Non-shardable custom
  /// sinks are wrapped in collect-splice adapters (core/shard_chain.h).
  util::Status run_sharded(unsigned num_threads, const std::vector<trace::UserId>& user_ids);

  trace::TraceSource* source_;  ///< caller-owned
  energy::EnergyLedger ledger_;
  trace::TraceMulticast downstream_;
  energy::EnergyAttributor attributor_;
  // Retained from PipelineOptions so run_sharded() can build per-shard
  // attributor chains (the members above only serve the serial path).
  energy::RadioModelFactory radio_factory_;
  energy::TailPolicy tail_policy_ = energy::TailPolicy::kLastPacket;
  PolicyFactory policy_factory_;
  trace::Interface interface_ = trace::Interface::kCellular;
  unsigned num_threads_ = 1;
  FailurePolicy failure_policy_ = FailurePolicy::kFailFast;
  unsigned max_shard_retries_ = 2;
  fault::FaultPlan* fault_plan_ = nullptr;
  std::size_t batch_size_ = trace::kDefaultBatchSize;
  std::string checkpoint_dir_;
  std::size_t checkpoint_every_users_ = 4;
  bool resume_ = false;
  std::string account_dir_;
  std::uint64_t account_budget_bytes_ = 0;
  /// Live only while account_dir_ is set; owned here (not per-run) because
  /// post-run queries read the sealed files through ledger_.account_spill().
  std::unique_ptr<energy::AccountSpill> account_spill_;
  std::uint64_t off_interface_bytes_ = 0;
  /// Registered analyses, in registration order; fan-out is rebuilt per run.
  std::vector<std::pair<std::string, trace::TraceSink*>> analyses_;
  bool collect_stage_stats_ = false;
  obs::TraceWriter* trace_writer_ = nullptr;
  obs::RunStats stats_;
};

}  // namespace wildenergy::core
