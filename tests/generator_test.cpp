// Tests for the synthetic study generator (src/sim/): determinism, stream
// contracts (ordering, bracketing), and behavioural properties of the app
// models.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "appmodel/catalog.h"
#include "sim/generator.h"
#include "sim/user_model.h"
#include "trace/sink.h"

namespace wildenergy::sim {
namespace {

sim::StudyConfig tiny() {
  StudyConfig cfg = small_study(123);
  cfg.num_users = 3;
  cfg.num_days = 20;
  cfg.total_apps = 50;
  return cfg;
}

TEST(StudyGenerator, DeterministicAcrossRuns) {
  const StudyGenerator gen{tiny()};
  trace::TraceCollector a;
  trace::TraceCollector b;
  gen.run(a);
  gen.run(b);
  ASSERT_EQ(a.packets().size(), b.packets().size());
  ASSERT_EQ(a.transitions().size(), b.transitions().size());
  for (std::size_t i = 0; i < a.packets().size(); ++i) {
    EXPECT_EQ(a.packets()[i].time.us, b.packets()[i].time.us);
    EXPECT_EQ(a.packets()[i].bytes, b.packets()[i].bytes);
    EXPECT_EQ(a.packets()[i].app, b.packets()[i].app);
  }
}

TEST(StudyGenerator, DifferentSeedsDiffer) {
  StudyConfig c1 = tiny();
  StudyConfig c2 = tiny();
  c2.seed = 999;
  trace::TraceCollector a;
  trace::TraceCollector b;
  StudyGenerator{c1}.run(a);
  StudyGenerator{c2}.run(b);
  EXPECT_NE(a.packets().size(), b.packets().size());
}

/// Sink asserting the TraceSink stream contract.
class ContractChecker final : public trace::TraceSink {
 public:
  void on_study_begin(const trace::StudyMeta& meta) override {
    EXPECT_FALSE(began_);
    began_ = true;
    meta_ = meta;
  }
  void on_user_begin(trace::UserId user) override {
    EXPECT_TRUE(began_);
    EXPECT_FALSE(in_user_);
    in_user_ = true;
    user_ = user;
    last_time_ = TimePoint{std::numeric_limits<std::int64_t>::min()};
  }
  void on_packet(const trace::PacketRecord& p) override {
    EXPECT_TRUE(in_user_);
    EXPECT_EQ(p.user, user_);
    EXPECT_GE(p.time.us, last_time_.us) << "packets must be time-ordered";
    EXPECT_GE(p.time.us, meta_.study_begin.us);
    EXPECT_LT(p.time.us, meta_.study_end.us);
    EXPECT_GT(p.bytes, 0u);
    last_time_ = p.time;
    ++packets_;
  }
  void on_transition(const trace::StateTransition& t) override {
    EXPECT_TRUE(in_user_);
    EXPECT_EQ(t.user, user_);
    EXPECT_GE(t.time.us, last_time_.us) << "transitions must be time-ordered";
    EXPECT_NE(t.from, t.to);
    last_time_ = t.time;
    ++transitions_;
  }
  void on_user_end(trace::UserId user) override {
    EXPECT_TRUE(in_user_);
    EXPECT_EQ(user, user_);
    in_user_ = false;
  }
  void on_study_end() override {
    EXPECT_FALSE(in_user_);
    ended_ = true;
  }

  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] bool ended() const { return ended_; }

 private:
  bool began_ = false;
  bool in_user_ = false;
  bool ended_ = false;
  trace::UserId user_ = 0;
  trace::StudyMeta meta_;
  TimePoint last_time_{};
  std::uint64_t packets_ = 0;
  std::uint64_t transitions_ = 0;
};

TEST(StudyGenerator, StreamContractHolds) {
  ContractChecker checker;
  StudyGenerator{tiny()}.run(checker);
  EXPECT_TRUE(checker.ended());
  EXPECT_GT(checker.packets(), 1000u);
}

TEST(StudyGenerator, TransitionsFormLegalStateMachine) {
  trace::TraceCollector out;
  StudyGenerator{tiny()}.run(out);
  // Per (user, app): fg->bg and bg->fg transitions must alternate.
  std::map<std::uint64_t, bool> in_fg;
  for (const auto& t : out.transitions()) {
    const std::uint64_t k = (static_cast<std::uint64_t>(t.user) << 32) | t.app;
    const bool fg = trace::is_foreground(t.to);
    if (trace::is_foreground(t.from)) {
      EXPECT_TRUE(in_fg[k]) << "fg->x transition while not in fg";
    }
    in_fg[k] = fg;
  }
}

TEST(StudyGenerator, ForegroundPacketsLieWithinSessions) {
  trace::TraceCollector out;
  StudyGenerator{tiny()}.run(out);
  // Reconstruct fg intervals from transitions and check every fg packet
  // falls inside one.
  std::map<std::uint64_t, bool> in_fg;
  std::map<std::uint64_t, std::size_t> violations;
  std::size_t fg_packets = 0;
  std::size_t ti = 0;
  // Packets and transitions are separate vectors; walk them merged per user
  // via the collector order (packets and transitions each time-ordered).
  // Simpler: index transitions by time per key.
  std::map<std::uint64_t, std::vector<std::pair<TimePoint, bool>>> edges;
  for (const auto& t : out.transitions()) {
    const std::uint64_t k = (static_cast<std::uint64_t>(t.user) << 32) | t.app;
    edges[k].emplace_back(t.time, trace::is_foreground(t.to));
  }
  (void)ti;
  for (const auto& p : out.packets()) {
    if (!trace::is_foreground(p.state)) continue;
    ++fg_packets;
    const std::uint64_t k = (static_cast<std::uint64_t>(p.user) << 32) | p.app;
    const auto& es = edges[k];
    // State at p.time = last edge before or at p.time.
    bool fg = false;
    for (const auto& [time, to_fg] : es) {
      if (time.us <= p.time.us) {
        fg = to_fg;
      } else {
        break;
      }
    }
    if (!fg) violations[k]++;
  }
  ASSERT_GT(fg_packets, 100u);
  std::size_t total_violations = 0;
  for (const auto& [k, v] : violations) total_violations += v;
  // state_at() tags scheduled-background packets foreground when they land
  // in a session, and media sessions overlap; tolerate a small residue.
  EXPECT_LT(static_cast<double>(total_violations), 0.02 * static_cast<double>(fg_packets));
}

TEST(StudyGenerator, RunUserMatchesFullRunSubset) {
  const StudyGenerator gen{tiny()};
  trace::TraceCollector full;
  trace::TraceCollector single;
  gen.run(full);
  gen.run_user(1, single);
  std::uint64_t full_user1 = 0;
  for (const auto& p : full.packets()) {
    if (p.user == 1) ++full_user1;
  }
  EXPECT_EQ(single.packets().size(), full_user1);
}

TEST(UserModel, PlansAreDeterministicAndDiverse) {
  const StudyConfig cfg = tiny();
  const auto catalog = appmodel::AppCatalog::full_catalog(cfg.seed, cfg.total_apps);
  const UserPlan a = make_user_plan(cfg, catalog, 0);
  const UserPlan a2 = make_user_plan(cfg, catalog, 0);
  const UserPlan b = make_user_plan(cfg, catalog, 1);
  EXPECT_EQ(a.installed.size(), a2.installed.size());
  EXPECT_GT(a.installed.size(), 5u);
  // Different users install different sets (overwhelmingly likely).
  std::set<trace::AppId> sa;
  std::set<trace::AppId> sb;
  for (const auto& ia : a.installed) sa.insert(ia.app);
  for (const auto& ia : b.installed) sb.insert(ia.app);
  EXPECT_NE(sa, sb);
}

TEST(UserModel, DiurnalWeightShape) {
  EXPECT_LT(diurnal_weight(3.5), diurnal_weight(20.0));  // night << evening
  EXPECT_GT(diurnal_weight(8.5), diurnal_weight(4.0));   // morning bump
  for (double h = 0.0; h < 24.0; h += 0.25) {
    EXPECT_GT(diurnal_weight(h), 0.0);
    EXPECT_LT(diurnal_weight(h), 1.7);  // bound used by rejection sampler
  }
}

TEST(UserModel, WeekdayFactorMeanIsOne) {
  double sum = 0.0;
  for (int d = 0; d < 7; ++d) sum += weekday_factor(d, 0.25);
  EXPECT_NEAR(sum / 7.0, 1.0, 0.02);
}

TEST(AppCatalog, PaperAppsPresent) {
  const auto catalog = appmodel::AppCatalog::paper_catalog();
  for (const char* name :
       {"Weibo", "Twitter", "Facebook", "Plus", "Samsung Push", "Urbanairship", "Maps", "GMail",
        "Go Weather widget", "Go Weather", "Accuweather", "Accuweather widget", "Spotify",
        "Pandora", "Pocketcasts", "Podcastaddict", "Chrome", "Firefox", "Browser",
        "Media Server", "Google Play", "Messenger", "ESPN", "4shared", "Stock Weather"}) {
    EXPECT_NE(catalog.find(name), trace::kNoApp) << name;
  }
}

TEST(AppCatalog, FullCatalogHas342Apps) {
  const auto catalog = appmodel::AppCatalog::full_catalog(42);
  EXPECT_EQ(catalog.size(), 342u);
  // Deterministic in the seed.
  const auto again = appmodel::AppCatalog::full_catalog(42);
  ASSERT_EQ(again.size(), catalog.size());
  for (trace::AppId id = 0; id < catalog.size(); ++id) {
    EXPECT_EQ(catalog[id].name, again[id].name);
    EXPECT_EQ(catalog[id].popularity, again[id].popularity);
  }
}

// Property sweep over every profile in the full catalog: parameters must be
// physically sensible or the generator would misbehave silently.
class ProfileInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ProfileInvariants, AllProfilesWellFormed) {
  const auto catalog =
      appmodel::AppCatalog::full_catalog(static_cast<std::uint64_t>(GetParam()));
  ASSERT_EQ(catalog.size(), 342u);
  for (trace::AppId id = 0; id < catalog.size(); ++id) {
    const auto& p = catalog[id];
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.popularity, 0.0) << p.name;
    EXPECT_GE(p.install_probability, 0.0) << p.name;
    EXPECT_LE(p.install_probability, 1.0) << p.name;
    EXPECT_GE(p.foreground.sessions_per_day, 0.0) << p.name;
    for (const auto& spec : p.periodic) {
      for (std::int64_t day : {0, 100, 300, 622}) {
        EXPECT_GT(spec.period.at(day).us, 0) << p.name;
      }
      EXPECT_GE(spec.period_jitter, 0.0) << p.name;
      EXPECT_GT(spec.bursts_per_update, 0) << p.name;
    }
    if (p.leak) {
      EXPECT_GE(p.leak->leak_probability, 0.0) << p.name;
      EXPECT_LE(p.leak->leak_probability, 1.0) << p.name;
      EXPECT_GT(p.leak->poll_period.at(0).us, 0) << p.name;
    }
    if (p.flush) {
      EXPECT_GT(p.flush->bursts, 0) << p.name;
      EXPECT_GT(p.flush->mean_spacing.us, 0) << p.name;
    }
    if (p.media) {
      EXPECT_GT(p.media->session_minutes_mean, 0.0) << p.name;
      EXPECT_GT(p.media->chunk_period.at(0).us, 0) << p.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileInvariants, ::testing::Values(1, 42, 777));

}  // namespace
}  // namespace wildenergy::sim
