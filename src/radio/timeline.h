// RadioTimeline: an in-memory sequence of energy segments, with aggregate
// queries. Used by tests, the power sampler, and the Fig. 4 trace dump.
// Streaming analyses do NOT use this (they consume segments on the fly);
// the timeline is for bounded windows only.
#pragma once

#include <vector>

#include "radio/segment.h"

namespace wildenergy::radio {

class RadioTimeline {
 public:
  /// A sink that appends into this timeline.
  [[nodiscard]] SegmentSink sink() {
    return [this](const EnergySegment& s) { segments_.push_back(s); };
  }

  void add(const EnergySegment& s) { segments_.push_back(s); }
  void clear() { segments_.clear(); }

  [[nodiscard]] const std::vector<EnergySegment>& segments() const { return segments_; }
  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] std::size_t size() const { return segments_.size(); }

  [[nodiscard]] double total_joules() const;
  [[nodiscard]] double joules_of_kind(SegmentKind kind) const;
  /// Energy overlapping [begin, end), pro-rating partially overlapping
  /// segments by time (segments have constant power).
  [[nodiscard]] double joules_in_window(TimePoint begin, TimePoint end) const;

  [[nodiscard]] TimePoint begin_time() const;
  [[nodiscard]] TimePoint end_time() const;

  /// True when segments are in order, non-overlapping and gap-free —
  /// the contract of SegmentSink. Checked by property tests.
  [[nodiscard]] bool is_contiguous() const;

 private:
  std::vector<EnergySegment> segments_;
};

}  // namespace wildenergy::radio
