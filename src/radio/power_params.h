// Radio power-model parameters.
//
// Defaults follow the measurements the paper relies on:
//  - LTE:  Huang et al., "A Close Examination of Performance and Power
//          Characteristics of 4G LTE Networks", MobiSys 2012 (paper ref [16]),
//          the same model used by the paper together with Qian et al. [22].
//  - UMTS: Qian et al., "Profiling Resource Usage for Mobile Applications",
//          MobiSys 2011 (paper ref [22]).
//  - WiFi: Huang et al. [16] comparison numbers.
// Absolute numbers vary by device and carrier (the paper says as much under
// Table 1); what the reproduction relies on is the *structure*: an expensive
// promotion, cheap per-byte cost, and a long high-power tail.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace wildenergy::radio {

/// A promotion ramp (e.g. RRC_IDLE -> RRC_CONNECTED).
struct PromotionParams {
  Duration duration{};
  double power_w = 0.0;
  /// Segments emitted for this ramp carry this view; point it at storage
  /// that outlives the model (string literals, or a caller-owned string for
  /// dynamically built parameter sets).
  std::string_view state_name = "PROMOTION";

  [[nodiscard]] bool enabled() const { return duration.us > 0; }
};

/// One phase of the post-transfer tail (e.g. Short DRX then Long DRX).
struct TailPhaseParams {
  Duration duration{};
  double power_w = 0.0;
  std::string_view state_name = "TAIL";
  /// Promotion required when a transfer arrives while in this phase
  /// (UMTS FACH -> DCH). Zero-duration means resume directly.
  PromotionParams repromotion{};
};

/// Complete parameter set for the generic burst-driven state machine.
struct BurstMachineParams {
  std::string model_name = "LTE";

  /// Promotion from the idle state.
  PromotionParams idle_promotion{};

  /// Power while actively transferring (base, excludes per-byte component).
  double active_power_w = 0.0;
  std::string_view active_state_name = "ACTIVE";

  /// Incremental energy per payload byte (captures the rate-dependent power
  /// term alpha_u/alpha_d of [16] folded over the transfer).
  double joules_per_byte_up = 0.0;
  double joules_per_byte_down = 0.0;

  /// Link rates used to convert burst size to airtime.
  double downlink_bps = 1.0;
  double uplink_bps = 1.0;
  /// Airtime floor per burst: covers request/response RTT and scheduling —
  /// this is why nearly-empty periodic requests are still expensive.
  Duration min_transfer_time{};

  /// Tail phases entered, in order, after the last transfer ends.
  std::vector<TailPhaseParams> tail_phases;

  /// Baseline idle (paging) power. Counted as device baseline, never
  /// attributed to apps.
  double idle_power_w = 0.0;

  [[nodiscard]] Duration total_tail() const {
    Duration d{};
    for (const auto& p : tail_phases) d += p.duration;
    return d;
  }
};

/// 4G LTE parameters (Huang et al. MobiSys'12): 260 ms promotion at 1.21 W,
/// ~1.06 W continuous reception, 11.6 s tail (modeled as a 1 s Short-DRX
/// phase at connected power followed by a 10.6 s Long-DRX phase), 11.4 mW
/// idle with paging.
[[nodiscard]] BurstMachineParams lte_params();

/// LTE with fast dormancy (paper §6, ref [7]): the device releases the RRC
/// connection ~1.5 s after the last transfer instead of waiting out the
/// network-configured 11.6 s tail.
[[nodiscard]] BurstMachineParams lte_fast_dormancy_params();

/// 3G UMTS parameters (Qian et al. MobiSys'11): 2 s IDLE->DCH promotion,
/// 0.8 W DCH, 5 s DCH tail, then 12 s FACH tail at 0.46 W with a 1.5 s
/// FACH->DCH repromotion.
[[nodiscard]] BurstMachineParams umts_params();

/// WiFi parameters: no promotion ramp worth modeling, ~0.77 W active,
/// 238 ms PSM tail. Used for the cellular-vs-WiFi energy comparisons that
/// justify the paper's focus on cellular (§3).
[[nodiscard]] BurstMachineParams wifi_params();

}  // namespace wildenergy::radio
