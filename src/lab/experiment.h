// In-lab experiment harness.
//
// The paper validates its trace findings with controlled single-app tests:
// a custom web page firing XMLHttpRequests every second under Chrome vs
// Firefox vs the stock browser (§4.1), and a push-notification library
// polling every five minutes for hours while producing a single
// user-visible notification (§4.2). This module is that testbed: it runs
// one AppProfile through a *scripted* foreground/background sequence on one
// device, attributes energy with the same EnergyAttributor used in the
// wild-study pipeline, and reports per-phase traffic and energy plus the
// full radio timeline.
#pragma once

#include <span>
#include <vector>

#include "appmodel/profile.h"
#include "energy/attributor.h"
#include "radio/timeline.h"

namespace wildenergy::lab {

/// One scripted phase: the app is held in the foreground or the background
/// for `duration` (e.g. "use for 5 minutes, then minimize for 2 hours").
struct PhaseSpec {
  Duration duration{};
  bool foreground = false;
};

struct LabConfig {
  std::uint64_t seed = 1;
  energy::RadioModelFactory radio_factory;  ///< defaults to LTE
};

struct PhaseResult {
  bool foreground = false;
  TimePoint begin;
  TimePoint end;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double joules = 0.0;
};

struct LabReport {
  std::vector<PhaseResult> phases;
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  double total_joules = 0.0;
  /// Periodic updates emitted and how many produced a user-visible
  /// notification (the §4.2 "useful work" contrast).
  std::uint64_t periodic_updates = 0;
  std::uint64_t visible_notifications = 0;
  /// Complete radio activity timeline (power-over-time), for dumps and for
  /// the emulated power monitor.
  radio::RadioTimeline timeline;

  [[nodiscard]] double foreground_joules() const;
  [[nodiscard]] double background_joules() const;
};

/// Run `profile` through the scripted phases starting from a cold (idle)
/// radio. Deterministic in config.seed. Forced-close dynamics are disabled:
/// in the lab nothing kills the app.
[[nodiscard]] LabReport run_experiment(const appmodel::AppProfile& profile,
                                       std::span<const PhaseSpec> script, LabConfig config = {});

/// Convenience scripts.
/// "Use briefly, then leave in background": fg `fg_minutes`, bg `bg_hours`.
[[nodiscard]] std::vector<PhaseSpec> use_then_background(double fg_minutes, double bg_hours);

}  // namespace wildenergy::lab
