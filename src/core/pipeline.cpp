#include "core/pipeline.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "radio/burst_machine.h"
#include "trace/instrumented_sink.h"
#include "trace/interface_filter.h"

namespace wildenergy::core {

namespace {
energy::RadioModelFactory resolve_factory(PipelineOptions& options) {
  if (!options.radio_factory) options.radio_factory = radio::make_lte_model;
  return options.radio_factory;
}

// Names of the global radio counters snapshotted around each run so
// RunStats reports per-run deltas even though the registry is process-wide.
struct RadioCounterSnapshot {
  std::uint64_t bursts, bursts_queued, promotions, repromotions;

  static RadioCounterSnapshot take() {
    const auto& reg = obs::MetricsRegistry::global();
    return {reg.counter_value("radio.bursts"), reg.counter_value("radio.bursts_queued"),
            reg.counter_value("radio.promotions"), reg.counter_value("radio.repromotions")};
  }
};
}  // namespace

StudyPipeline::StudyPipeline(sim::StudyConfig config, PipelineOptions options)
    : generator_(config),
      attributor_(resolve_factory(options), &downstream_, options.tail_policy),
      interface_(options.interface),
      collect_stage_stats_(options.collect_stage_stats),
      trace_writer_(options.trace_writer) {}

StudyPipeline::StudyPipeline(sim::StudyConfig config, appmodel::AppCatalog catalog,
                             PipelineOptions options)
    : generator_(config, std::move(catalog)),
      attributor_(resolve_factory(options), &downstream_, options.tail_policy),
      interface_(options.interface),
      collect_stage_stats_(options.collect_stage_stats),
      trace_writer_(options.trace_writer) {}

void StudyPipeline::add_analysis(trace::TraceSink* sink) {
  add_analysis("analysis " + std::to_string(analyses_.size()), sink);
}

void StudyPipeline::add_analysis(std::string name, trace::TraceSink* sink) {
  analyses_.emplace_back(std::move(name), sink);
}

void StudyPipeline::set_policy(PolicyFactory factory) { policy_factory_ = std::move(factory); }

void StudyPipeline::run() {
  stats_ = {};
  const bool timed = collect_stage_stats_ || trace_writer_ != nullptr;
  const RadioCounterSnapshot radio_before = RadioCounterSnapshot::take();

  // When profiling, every stage is decorated with an InstrumentedSink sharing
  // one PhaseStack, so nested callbacks charge each stage only its own work.
  obs::PhaseStack phase_stack;
  std::vector<std::unique_ptr<trace::InstrumentedSink>> wrappers;
  int next_tid = 2;  // tid 0 = pipeline, tid 1 = generate
  const auto wrap = [&](std::string name, trace::TraceSink* sink) -> trace::TraceSink* {
    if (!timed) return sink;
    const int tid = next_tid++;
    wrappers.push_back(std::make_unique<trace::InstrumentedSink>(std::move(name), sink,
                                                                 &phase_stack, trace_writer_, tid));
    if (trace_writer_ != nullptr) trace_writer_->set_track_name(tid, wrappers.back()->name());
    return wrappers.back().get();
  };

  // Rebuild the fan-out chain (wrapped or bare) for this run. The attributor
  // was constructed pointing at downstream_, so only its contents change.
  downstream_.clear();
  downstream_.add(wrap("ledger", &ledger_));
  for (const auto& [name, sink] : analyses_) downstream_.add(wrap(name, sink));

  trace::TraceSink* head = wrap("attribute", &attributor_);
  std::unique_ptr<trace::TraceSink> policy;
  if (policy_factory_) {
    policy = policy_factory_(head);
    head = wrap("policy", policy.get());
  }
  trace::InterfaceFilter filter{head, interface_};
  trace::TraceSink* entry = wrap("filter", &filter);

  const std::int64_t run_start_us = trace_writer_ != nullptr ? trace_writer_->now_us() : 0;
  obs::Stopwatch total;
  generator_.run(*entry);
  stats_.wall_ms = total.elapsed_ms();
  off_interface_bytes_ = filter.dropped_bytes();

  // Totals come from counters the stages maintain regardless of profiling.
  stats_.users = generator_.config().num_users;
  stats_.packets = ledger_.total_packets();
  stats_.bytes = ledger_.total_bytes();
  stats_.joules = ledger_.total_joules();
  stats_.off_interface_packets = filter.dropped_packets();
  stats_.off_interface_bytes = filter.dropped_bytes();

  const energy::AttributionCounters& ac = attributor_.counters();
  stats_.transitions = ac.transitions;
  stats_.tail_attributions = ac.tail_attributions;
  stats_.proportional_splits = ac.proportional_splits;
  stats_.promotion_segments = ac.promotion_segments;
  stats_.transfer_segments = ac.transfer_segments;
  stats_.tail_segments = ac.tail_segments;
  stats_.drx_segments = ac.drx_segments;
  stats_.idle_segments = ac.idle_segments;

  const RadioCounterSnapshot radio_after = RadioCounterSnapshot::take();
  stats_.radio_bursts = radio_after.bursts - radio_before.bursts;
  stats_.radio_bursts_queued = radio_after.bursts_queued - radio_before.bursts_queued;
  stats_.radio_promotions = radio_after.promotions - radio_before.promotions;
  stats_.radio_repromotions = radio_after.repromotions - radio_before.repromotions;

  stats_.timed = timed;
  if (timed) {
    // Display in pipeline order: generate, filter, policy, attribute, sinks.
    // Wrappers were created in reverse chain order (sinks first), so collect
    // them back to front; "generate" is the wall time no stage accounted for.
    double accounted_ms = 0.0;
    for (const auto& w : wrappers) accounted_ms += w->stats().self_ms;
    obs::StageStats generate;
    generate.name = "generate";
    generate.self_ms = std::max(0.0, stats_.wall_ms - accounted_ms);
    generate.packets = stats_.packets + stats_.off_interface_packets;
    generate.transitions = stats_.transitions;
    generate.bytes = stats_.bytes + stats_.off_interface_bytes;
    stats_.stages.push_back(generate);
    // wrappers = [ledger, analyses..., attribute, (policy), filter]: emit the
    // head chain reversed (filter, policy, attribute), then the fan-out sinks
    // in registration order.
    const std::size_t num_sinks = 1 + analyses_.size();
    for (std::size_t i = wrappers.size(); i > num_sinks; --i) {
      stats_.stages.push_back(wrappers[i - 1]->stats());
    }
    for (std::size_t i = 0; i < num_sinks; ++i) {
      stats_.stages.push_back(wrappers[i]->stats());
    }

    if (trace_writer_ != nullptr) {
      trace_writer_->set_track_name(0, "pipeline");
      trace_writer_->set_track_name(1, "generate");
      trace_writer_->add_complete("run", "pipeline", run_start_us,
                                  static_cast<std::int64_t>(stats_.wall_ms * 1e3), 0);
      trace_writer_->add_complete("generate (self time)", "generate", run_start_us,
                                  static_cast<std::int64_t>(generate.self_ms * 1e3), 1);
    }
  }
}

}  // namespace wildenergy::core
