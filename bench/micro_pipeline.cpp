// Performance microbenchmarks (google-benchmark): the radio state machine,
// the attribution pipeline, and the study generator. These guard the
// streaming design goal of DESIGN.md §4.2 — full-length 623-day studies must
// stay practical on a laptop.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "energy/attributor.h"
#include "obs/stopwatch.h"
#include "radio/burst_machine.h"
#include "sim/generator.h"
#include "trace/batch.h"
#include "trace/instrumented_sink.h"
#include "trace/interface_filter.h"
#include "trace/trace_store.h"
#include "util/rng.h"

#include "bench_util.h"

namespace wildenergy {
namespace {

void BM_RadioModelBursts(benchmark::State& state) {
  radio::BurstMachine lte{radio::lte_params()};
  double joules = 0.0;
  const radio::SegmentSink sink = [&](const radio::EnergySegment& s) { joules += s.joules; };
  std::int64_t n = 0;
  for (auto _ : state) {
    lte.on_transfer({TimePoint{n * 20'000'000}, 5000, radio::Direction::kDownlink}, sink);
    ++n;
  }
  lte.finish(TimePoint{n * 20'000'000 + 60'000'000}, sink);
  benchmark::DoNotOptimize(joules);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RadioModelBursts);

void BM_IsolatedBurstEnergy(benchmark::State& state) {
  radio::BurstMachine lte{radio::lte_params()};
  double acc = 0.0;
  for (auto _ : state) {
    acc += lte.isolated_burst_energy(static_cast<std::uint64_t>(state.range(0)),
                                     radio::Direction::kDownlink);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_IsolatedBurstEnergy)->Arg(100)->Arg(100'000)->Arg(10'000'000);

void BM_AttributionPipeline(benchmark::State& state) {
  // Pre-generate a packet schedule, then measure attribution throughput.
  Rng rng{7};
  std::vector<trace::PacketRecord> packets;
  TimePoint t{0};
  for (int i = 0; i < 100'000; ++i) {
    t += sec(rng.exponential(5.0));
    trace::PacketRecord p;
    p.time = t;
    p.app = static_cast<trace::AppId>(rng.uniform_int(40));
    p.bytes = 200 + rng.uniform_int(100'000);
    p.state = trace::ProcessState::kService;
    packets.push_back(p);
  }
  trace::StudyMeta meta;
  meta.num_users = 1;
  meta.study_end = t + hours(1.0);

  for (auto _ : state) {
    trace::TraceSink null_sink;
    energy::EnergyAttributor attr{radio::make_lte_model, &null_sink};
    attr.on_study_begin(meta);
    attr.on_user_begin(0);
    for (const auto& p : packets) attr.on_packet(p);
    attr.on_user_end(0);
    benchmark::DoNotOptimize(attr.device_joules());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_AttributionPipeline)->Unit(benchmark::kMillisecond);

void BM_StudyGeneration(benchmark::State& state) {
  sim::StudyConfig cfg = sim::small_study(42);
  cfg.num_users = 1;
  cfg.num_days = state.range(0);
  const sim::StudyGenerator gen{cfg};
  std::uint64_t packets = 0;
  for (auto _ : state) {
    class Counter final : public trace::TraceSink {
     public:
      std::uint64_t n = 0;
      void on_packet(const trace::PacketRecord&) override { ++n; }
    } counter;
    gen.run(counter);
    packets = counter.n;
  }
  state.counters["packets"] = static_cast<double>(packets);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_StudyGeneration)->Arg(10)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_FullPipelineSmallStudy(benchmark::State& state) {
  for (auto _ : state) {
    sim::StudyGenerator generator{sim::small_study(42)};
    core::StudyPipeline pipeline{&generator};
    pipeline.run();
    benchmark::DoNotOptimize(pipeline.ledger().total_joules());
  }
  state.SetLabel("6 users x 60 days x 80 apps");
}
BENCHMARK(BM_FullPipelineSmallStudy)->Unit(benchmark::kMillisecond);

void BM_ShardedPipeline(benchmark::State& state) {
  core::PipelineOptions options;
  options.num_threads = static_cast<unsigned>(state.range(0));
  sim::StudyConfig cfg = sim::small_study(42);
  cfg.num_users = 8;  // enough users to keep every worker in the sweep busy
  for (auto _ : state) {
    sim::StudyGenerator generator{cfg};
    core::StudyPipeline pipeline{&generator, options};
    pipeline.run();
    benchmark::DoNotOptimize(pipeline.ledger().total_joules());
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_ShardedPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Event-path sweep: per-record virtual dispatch vs EventBatch delivery
// through a realistic sink chain (trace/batch.h). This is the number the
// batched-event-path refactor is accountable to: single-thread batched
// throughput must be >= 1.5x the per-record path.

/// A cheap analysis leaf; batch-aware like the migrated production sinks.
class CountingSink final : public trace::TraceSink {
 public:
  void on_packet(const trace::PacketRecord& p) override {
    ++packets_;
    bytes_ += p.bytes;
  }
  void on_transition(const trace::StateTransition&) override { ++transitions_; }
  void on_batch(const trace::EventBatch& batch) override {
    packets_ += batch.packets.size();
    transitions_ += batch.transitions.size();
    for (const auto& p : batch.packets) bytes_ += p.bytes;
  }
  [[nodiscard]] std::uint64_t packets() const { return packets_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t bytes_ = 0;
};

/// The generated study, captured once as one whole-stream batch per user so
/// the sweep measures sink-chain dispatch, not generation.
struct CapturedStudy final : trace::TraceSink {
  trace::StudyMeta meta;
  std::vector<trace::EventBatch> users;
  std::uint64_t packets = 0;
  std::uint64_t events = 0;

  void on_study_begin(const trace::StudyMeta& m) override { meta = m; }
  void on_user_begin(trace::UserId user) override {
    users.emplace_back();
    users.back().user = user;
  }
  void on_packet(const trace::PacketRecord& p) override {
    users.back().add(p);
    ++packets;
    ++events;
  }
  void on_transition(const trace::StateTransition& t) override {
    users.back().add(t);
    ++events;
  }
};

/// Slice one user's captured stream into contiguous spans of `batch_size`
/// events (done outside the timed region; a real producer fills batches as
/// it generates, which costs no extra pass).
std::vector<trace::EventBatch> slice(const trace::EventBatch& whole, std::size_t batch_size) {
  std::vector<trace::EventBatch> slices;
  std::size_t pi = 0;
  std::size_t ti = 0;
  trace::EventBatch current;
  current.user = whole.user;
  for (const trace::EventKind kind : whole.order) {
    if (kind == trace::EventKind::kPacket) {
      current.add(whole.packets[pi++]);
    } else {
      current.add(whole.transitions[ti++]);
    }
    if (current.size() >= batch_size) {
      slices.push_back(std::move(current));
      current = trace::EventBatch{};
      current.user = whole.user;
    }
  }
  if (!current.empty()) slices.push_back(std::move(current));
  return slices;
}

/// One timed delivery of the captured study through the chain
///   InterfaceFilter -> InstrumentedSink -> TraceMulticast -> 8 counters,
/// per record (batch_size == 0) or as EventBatches. Returns wall ms.
double run_event_path(const CapturedStudy& study,
                      const std::vector<std::vector<trace::EventBatch>>& slices,
                      std::size_t batch_size) {
  std::vector<CountingSink> leaves(8);
  trace::TraceMulticast fan;
  for (auto& leaf : leaves) fan.add(&leaf);
  trace::InstrumentedSink instrumented{"bench", &fan};
  trace::InterfaceFilter head{&instrumented, trace::Interface::kCellular};

  obs::Stopwatch watch;
  head.on_study_begin(study.meta);
  for (std::size_t u = 0; u < study.users.size(); ++u) {
    head.on_user_begin(study.users[u].user);
    if (batch_size == 0) {
      trace::replay(study.users[u], head);
    } else {
      for (const auto& batch : slices[u]) head.on_batch(batch);
    }
    head.on_user_end(study.users[u].user);
  }
  head.on_study_end();
  return watch.elapsed_ms();
}

}  // namespace
}  // namespace wildenergy

// Custom main instead of BENCHMARK_MAIN(): after the microbenches, the
// headline "micro_pipeline" sweep captures the study once into a TraceStore
// (untimed) and then runs the full pipeline — filter -> attribution ->
// ledger/analyses — over the store at each worker-thread count, emitting one
// perf footer / WILDENERGY_BENCH_JSON record per thread count (with
// `threads` and `speedup` = serial wall over that run's wall). Timing the
// data plane over a pre-captured store is the number the flat-state refactor
// is accountable to; it deliberately excludes the generator's serial RNG
// walk, which previously dominated (~75%) the old generator-backed
// definition of this bench and capped any data-plane speedup at ~1.3x. On a
// single-CPU host the sweep honestly reports speedup ~= 1. Then two batched
// event-path sweeps: sink-chain dispatch per record vs batch sizes
// {1, 64, 4096}, and the generator-backed full pipeline per record vs the
// default batch size — micro_pipeline.full_batched keeps end-to-end
// continuity with records from before this bench was redefined (each record
// carries "batch_size":N; speedup is per-record wall over that run's wall).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace wildenergy;
  const sim::StudyConfig cfg = benchutil::config_from_env(/*default_days=*/60);
  {
    sim::StudyGenerator generator{cfg};
    trace::TraceStore store;
    if (!store.capture(generator).ok()) return 1;
    constexpr int kReps = 3;
    double serial_wall_ms = 0.0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      core::PipelineOptions options;
      options.num_threads = threads;
      obs::RunStats best;
      for (int rep = 0; rep < kReps; ++rep) {
        core::StudyPipeline pipeline{&store, options};
        const auto result = pipeline.run();
        if (!result.ok()) return 1;
        if (rep == 0 || result->wall_ms < best.wall_ms) best = result.value();
      }
      if (threads == 1) serial_wall_ms = best.wall_ms;
      benchutil::report_perf("micro_pipeline", cfg, best, serial_wall_ms);
    }
  }

  // Sink-chain dispatch: per-record vs batched, single thread. Each
  // configuration keeps the best of kReps runs (dispatch benches are noisy).
  {
    CapturedStudy study;
    sim::StudyGenerator{cfg}.run(study);
    constexpr int kReps = 5;
    double per_record_ms = 0.0;
    const std::vector<std::vector<trace::EventBatch>> no_slices;
    for (const std::size_t batch_size : {std::size_t{0}, std::size_t{1}, std::size_t{64},
                                         std::size_t{4096}}) {
      std::vector<std::vector<trace::EventBatch>> slices;
      if (batch_size > 0) {
        slices.reserve(study.users.size());
        for (const auto& user : study.users) slices.push_back(slice(user, batch_size));
      }
      double best_ms = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        const double ms = run_event_path(study, batch_size > 0 ? slices : no_slices, batch_size);
        if (rep == 0 || ms < best_ms) best_ms = ms;
      }
      if (batch_size == 0) per_record_ms = best_ms;
      const double speedup = batch_size == 0 || best_ms <= 0.0 ? 1.0 : per_record_ms / best_ms;
      // Dispatch-only sweep: the counter chain attributes no energy.
      benchutil::report_perf("micro_pipeline.event_path", cfg, best_ms, study.packets,
                             benchutil::no_joules(), /*threads=*/1, speedup,
                             "\"batch_size\":" + std::to_string(batch_size));
    }
  }

  // Full pipeline, generation and attribution included: the honest end-to-end
  // cost of flipping batching off vs the default batch size.
  {
    constexpr int kReps = 3;
    double per_record_ms = 0.0;
    for (const std::size_t batch_size : {std::size_t{0}, core::PipelineOptions{}.batch_size}) {
      core::PipelineOptions options;
      options.batch_size = batch_size;
      sim::StudyGenerator generator{cfg};
      core::StudyPipeline pipeline{&generator, options};
      double best_ms = 0.0;
      obs::RunStats last_stats;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto result = pipeline.run();
        if (!result.ok()) return 1;
        last_stats = result.value();
        if (rep == 0 || last_stats.wall_ms < best_ms) best_ms = last_stats.wall_ms;
      }
      if (batch_size == 0) per_record_ms = best_ms;
      const double speedup = batch_size == 0 || best_ms <= 0.0 ? 1.0 : per_record_ms / best_ms;
      benchutil::report_perf("micro_pipeline.full_batched", cfg, best_ms, last_stats.packets,
                             last_stats.joules, /*threads=*/1, speedup,
                             "\"batch_size\":" + std::to_string(batch_size));
    }
  }
  return 0;
}
