# Empty dependencies file for fig6_time_since_fg.
# This may be replaced when dependencies are built.
