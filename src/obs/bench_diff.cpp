#include "obs/bench_diff.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/json.h"

namespace wildenergy::obs {

std::string BenchRecord::key() const {
  std::string k = bench + " t" + std::to_string(threads);
  if (batch_size >= 0) k += " b" + std::to_string(batch_size);
  if (resumed) k += " resumed";
  return k;
}

std::vector<BenchRecord> parse_bench_log(std::string_view jsonl) {
  std::vector<BenchRecord> out;
  std::size_t pos = 0;
  while (pos <= jsonl.size()) {
    const std::size_t eol = jsonl.find('\n', pos);
    const std::string_view line =
        jsonl.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? jsonl.size() + 1 : eol + 1;
    if (line.empty()) continue;
    const auto parsed = JsonValue::parse(line);
    if (!parsed || !parsed->is_object()) continue;
    const std::string bench = parsed->string_or("bench", "");
    if (bench.empty()) continue;
    BenchRecord rec;
    rec.bench = bench;
    rec.threads = static_cast<std::int64_t>(parsed->number_or("threads", 1));
    rec.batch_size = static_cast<std::int64_t>(parsed->number_or("batch_size", -1));
    rec.users = static_cast<std::int64_t>(parsed->number_or("users", 0));
    rec.days = static_cast<std::int64_t>(parsed->number_or("days", 0));
    rec.seed = static_cast<std::int64_t>(parsed->number_or("seed", 0));
    rec.wall_ms = parsed->number_or("wall_ms", 0.0);
    rec.packets_per_sec = parsed->number_or("packets_per_sec", 0.0);
    // "resumed" may arrive as a JSON bool or as the string "true" (it is
    // spliced via report_perf's free-form extra_json parameter).
    if (const JsonValue* resumed = parsed->get("resumed"); resumed != nullptr) {
      rec.resumed = (resumed->type() == JsonValue::Type::kBool && resumed->as_bool()) ||
                    (resumed->is_string() && resumed->as_string() == "true");
    }
    out.push_back(std::move(rec));
  }
  return out;
}

double BenchDiffOptions::threshold_for(const std::string& bench) const {
  const auto it = per_bench.find(bench);
  return it == per_bench.end() ? threshold : it->second;
}

const char* to_string(BenchDiffStatus s) {
  switch (s) {
    case BenchDiffStatus::kOk: return "ok";
    case BenchDiffStatus::kImproved: return "improved";
    case BenchDiffStatus::kRegressed: return "REGRESSED";
    case BenchDiffStatus::kScaleMismatch: return "skipped (scale mismatch)";
    case BenchDiffStatus::kMissingBaseline: return "new (no baseline)";
  }
  return "?";
}

bool BenchDiffReport::has_regressions() const {
  for (const auto& e : entries) {
    if (e.status == BenchDiffStatus::kRegressed) return true;
  }
  return false;
}

std::size_t BenchDiffReport::count(BenchDiffStatus s) const {
  std::size_t n = 0;
  for (const auto& e : entries) {
    if (e.status == s) ++n;
  }
  return n;
}

namespace {
std::string fmt_pps(double pps) {
  char buf[32];
  if (pps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", pps / 1e6);
  } else if (pps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", pps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", pps);
  }
  return buf;
}

std::string fmt_delta(const BenchDiffEntry& e) {
  if (e.status == BenchDiffStatus::kScaleMismatch ||
      e.status == BenchDiffStatus::kMissingBaseline) {
    return "-";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", e.delta * 100.0);
  return buf;
}
}  // namespace

std::string BenchDiffReport::to_markdown() const {
  std::string md = "## Bench throughput vs committed baseline\n\n";
  md += "| bench | baseline pkt/s | fresh pkt/s | delta | threshold | status |\n";
  md += "|---|---:|---:|---:|---:|---|\n";
  for (const auto& e : entries) {
    char thr[16];
    std::snprintf(thr, sizeof(thr), "-%.0f%%", e.threshold * 100.0);
    md += "| " + e.key + " | " +
          (e.status == BenchDiffStatus::kMissingBaseline ? "-" : fmt_pps(e.baseline_pps)) +
          " | " + fmt_pps(e.fresh_pps) + " | " + fmt_delta(e) + " | " + thr + " | " +
          to_string(e.status) + " |\n";
  }
  md += "\n";
  md += std::to_string(count(BenchDiffStatus::kRegressed)) + " regressed, " +
        std::to_string(count(BenchDiffStatus::kImproved)) + " improved, " +
        std::to_string(count(BenchDiffStatus::kOk)) + " within threshold, " +
        std::to_string(count(BenchDiffStatus::kScaleMismatch)) + " skipped (scale mismatch), " +
        std::to_string(count(BenchDiffStatus::kMissingBaseline)) + " without baseline.\n";
  return md;
}

void BenchDiffReport::print(std::ostream& os) const {
  for (const auto& e : entries) {
    os << "[diff] " << e.key << ": ";
    if (e.status == BenchDiffStatus::kMissingBaseline) {
      os << fmt_pps(e.fresh_pps) << " pkt/s (no baseline)";
    } else if (e.status == BenchDiffStatus::kScaleMismatch) {
      os << "skipped (scale mismatch vs baseline)";
    } else {
      os << fmt_pps(e.baseline_pps) << " -> " << fmt_pps(e.fresh_pps) << " pkt/s ("
         << fmt_delta(e) << ") " << to_string(e.status);
    }
    os << "\n";
  }
  os << "[diff] " << count(BenchDiffStatus::kRegressed) << " regression(s) over threshold\n";
}

BenchDiffReport diff_bench_logs(std::string_view baseline_jsonl, std::string_view fresh_jsonl,
                                const BenchDiffOptions& options) {
  // Last record per key wins on both sides: the baseline file is a
  // trajectory (appended per PR), and a fresh log may re-run a bench.
  std::map<std::string, BenchRecord> baseline;
  for (auto& rec : parse_bench_log(baseline_jsonl)) baseline[rec.key()] = std::move(rec);

  std::map<std::string, BenchRecord> fresh;
  std::vector<std::string> fresh_order;  // report in fresh-run order
  for (auto& rec : parse_bench_log(fresh_jsonl)) {
    const std::string k = rec.key();
    if (fresh.find(k) == fresh.end()) fresh_order.push_back(k);
    fresh[k] = std::move(rec);
  }

  BenchDiffReport report;
  for (const std::string& k : fresh_order) {
    const BenchRecord& f = fresh[k];
    BenchDiffEntry e;
    e.key = k;
    e.bench = f.bench;
    e.fresh_pps = f.packets_per_sec;
    e.threshold = options.threshold_for(f.bench);
    const auto it = baseline.find(k);
    if (it == baseline.end()) {
      e.status = BenchDiffStatus::kMissingBaseline;
    } else {
      const BenchRecord& b = it->second;
      e.baseline_pps = b.packets_per_sec;
      if (b.users != f.users || b.days != f.days || b.seed != f.seed) {
        e.status = BenchDiffStatus::kScaleMismatch;
      } else if (b.packets_per_sec <= 0.0 || !std::isfinite(f.packets_per_sec)) {
        e.status = BenchDiffStatus::kScaleMismatch;  // degenerate record
      } else {
        e.delta = (f.packets_per_sec - b.packets_per_sec) / b.packets_per_sec;
        e.status = e.delta < -e.threshold  ? BenchDiffStatus::kRegressed
                   : e.delta > e.threshold ? BenchDiffStatus::kImproved
                                           : BenchDiffStatus::kOk;
      }
    }
    report.entries.push_back(std::move(e));
  }
  return report;
}

}  // namespace wildenergy::obs
