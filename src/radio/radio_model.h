// Abstract radio interface power/state model.
//
// Implementations: LteModel (primary, §3.1 of the paper), UmtsModel (3G) and
// WifiModel for comparison/what-if analyses. All are burst-driven state
// machines; see DESIGN.md §2 "radio/".
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "radio/segment.h"

namespace wildenergy::radio {

class RadioModel {
 public:
  virtual ~RadioModel() = default;

  RadioModel(const RadioModel&) = delete;
  RadioModel& operator=(const RadioModel&) = delete;

  /// Feed the next transfer. Events must arrive in non-decreasing time order;
  /// the model emits every energy segment that is fully determined up to (and
  /// including) the start of this transfer's active period.
  virtual void on_transfer(const TransferEvent& event, const SegmentSink& sink) = 0;

  /// Feed a run of consecutive transfers (the batched event path). Exactly
  /// equivalent to calling on_transfer for each event in order; `sink`
  /// additionally receives the index of the event that produced each
  /// segment, so a batch consumer can settle earlier events lazily. The
  /// default loops over on_transfer; models override it to hoist per-event
  /// sink setup out of the loop.
  virtual void on_transfers(const TransferEvent* events, std::size_t count,
                            const IndexedSegmentSink& sink);

  /// Close out the model at `end`: emits any remaining tail and trailing idle
  /// segments. The model returns to its initial (idle) state afterwards.
  virtual void finish(TimePoint end, const SegmentSink& sink) = 0;

  /// True if the radio would still be in a powered (non-idle) state at `t`,
  /// assuming no transfers after the last one fed in.
  [[nodiscard]] virtual bool is_powered_at(TimePoint t) const = 0;

  /// Model name for reports ("LTE", "UMTS", "WiFi").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Reset to initial idle state, forgetting all history.
  virtual void reset() = 0;

 protected:
  RadioModel() = default;
};

inline void RadioModel::on_transfers(const TransferEvent* events, std::size_t count,
                                     const IndexedSegmentSink& sink) {
  for (std::size_t i = 0; i < count; ++i) {
    on_transfer(events[i], [&sink, i](const EnergySegment& s) { sink(i, s); });
  }
}

}  // namespace wildenergy::radio
