// FaultPlan: scripted shard/sink failures for exercising the engine's
// failure policies (core/pipeline.h).
//
// A plan is a set of per-user fault specs. When the sharded engine builds a
// shard for a user the plan covers, it wraps the shard's entry sink in a
// FaultySink that throws ShardFault (and/or stalls) at the Nth sink callback
// — but only for the first `fail_attempts` attempts, so retry policies can
// be shown to recover deterministically. Attempts are counted by the plan
// (wrap() is one attempt), making "fails once, succeeds on retry" a pure
// function of the plan, not of timing.
//
// Usable from tests, the CLI (--inject-fault), and the fault bench.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "trace/sink.h"
#include "util/status.h"

namespace wildenergy::fault {

/// The exception an injected fault raises inside a shard.
class ShardFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ShardFaultSpec {
  trace::UserId user = 0;
  std::uint64_t nth_callback = 1;  ///< 1-based sink callback index to fail at
  unsigned fail_attempts = 1;      ///< throw on this many attempts, then pass
  unsigned stall_ms = 0;           ///< sleep this long at the Nth callback first
};

/// Parse "user=U,nth=N[,attempts=A][,stall_ms=S]" (any key order; user is
/// required). Returns kInvalidArgument with a usage hint on malformed specs.
[[nodiscard]] util::StatusOr<ShardFaultSpec> parse_shard_fault_spec(std::string_view text);

/// What goes wrong at a scripted checkpoint write (the kill-and-recover
/// harness). Faults key on the Nth write attempt of one run.
enum class CheckpointFaultKind : std::uint8_t {
  kShortWrite,  ///< persist only the first `truncate_to` bytes (torn write)
  kIoError,     ///< the write fails cleanly (ENOSPC-style), run continues
  kHardStop,    ///< throw ShardFault right after the write lands (simulated kill)
};

struct CheckpointFaultSpec {
  std::uint64_t nth_write = 1;  ///< 1-based checkpoint write attempt to hit
  CheckpointFaultKind kind = CheckpointFaultKind::kHardStop;
  std::uint64_t truncate_to = 0;  ///< kShortWrite: payload bytes that land
};

/// Parse "nth=N,kind=hard-stop|short-write|io-error[,truncate_to=B]".
[[nodiscard]] util::StatusOr<CheckpointFaultSpec> parse_checkpoint_fault_spec(
    std::string_view text);

class FaultPlan {
 public:
  void add(const ShardFaultSpec& spec);
  void add_checkpoint_fault(const CheckpointFaultSpec& spec);

  /// The fault scripted for the Nth (1-based) checkpoint write, if any.
  /// Thread-safe; the returned copy is the caller's to act on.
  [[nodiscard]] std::optional<CheckpointFaultSpec> checkpoint_fault_for(
      std::uint64_t nth_write) const;

  [[nodiscard]] bool has_fault_for(trace::UserId user) const;
  [[nodiscard]] bool empty() const;

  /// Number of times wrap() has been called for this user (== attempts the
  /// engine has made to run the user's shard).
  [[nodiscard]] unsigned attempts(trace::UserId user) const;

  /// Decorate `downstream` with this user's fault for one shard attempt.
  /// Counts the attempt; returns nullptr if the plan has no fault for the
  /// user. The returned sink forwards every callback to `downstream` and
  /// stalls/throws per the spec. Thread-safe to call, though the engine only
  /// calls it from the coordinating thread.
  [[nodiscard]] std::unique_ptr<trace::TraceSink> wrap(trace::UserId user,
                                                       trace::TraceSink* downstream);

 private:
  mutable std::mutex mu_;
  std::map<trace::UserId, ShardFaultSpec> faults_;
  std::map<trace::UserId, unsigned> attempts_;
  std::map<std::uint64_t, CheckpointFaultSpec> checkpoint_faults_;
};

}  // namespace wildenergy::fault
