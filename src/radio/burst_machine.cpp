#include "radio/burst_machine.h"

#include <algorithm>
#include <cassert>

namespace wildenergy::radio {

BurstMachine::BurstMachine(BurstMachineParams params) : params_(std::move(params)) {
  assert(!params_.tail_phases.empty());
  auto& registry = obs::MetricsRegistry::current();
  ctr_bursts_ = &registry.counter("radio.bursts");
  ctr_bursts_queued_ = &registry.counter("radio.bursts_queued");
  ctr_promotions_ = &registry.counter("radio.promotions");
  ctr_repromotions_ = &registry.counter("radio.repromotions");
}

Duration BurstMachine::transfer_duration(std::uint64_t bytes, Direction dir) const {
  const double rate = dir == Direction::kUplink ? params_.uplink_bps : params_.downlink_bps;
  const auto airtime = sec(static_cast<double>(bytes) * 8.0 / rate);
  return std::max(airtime, params_.min_transfer_time);
}

double BurstMachine::isolated_burst_energy(std::uint64_t bytes, Direction dir) const {
  double joules = 0.0;
  if (params_.idle_promotion.enabled()) {
    joules += params_.idle_promotion.power_w * params_.idle_promotion.duration.seconds();
  }
  const Duration dur = transfer_duration(bytes, dir);
  const double per_byte =
      dir == Direction::kUplink ? params_.joules_per_byte_up : params_.joules_per_byte_down;
  joules += params_.active_power_w * dur.seconds() + per_byte * static_cast<double>(bytes);
  for (const auto& phase : params_.tail_phases) {
    joules += phase.power_w * phase.duration.seconds();
  }
  return joules;
}

void BurstMachine::emit_gap(TimePoint until, const SegmentSink& sink,
                            std::size_t& phase_at_until) {
  assert(cursor_ >= active_until_);
  phase_at_until = kIdlePhase;
  TimePoint phase_start = active_until_;
  for (std::size_t i = 0; i < params_.tail_phases.size(); ++i) {
    const auto& phase = params_.tail_phases[i];
    const TimePoint phase_end = phase_start + phase.duration;
    const TimePoint lo = std::max(cursor_, phase_start);
    const TimePoint hi = std::min(until, phase_end);
    if (hi > lo) {
      sink({lo, hi, phase.power_w * (hi - lo).seconds(), SegmentKind::kTail,
            phase.state_name});
    }
    if (until < phase_end) {
      phase_at_until = i;
      cursor_ = until;
      return;
    }
    phase_start = phase_end;
  }
  // Reached idle: phase_start is now the tail end.
  const TimePoint lo = std::max(cursor_, phase_start);
  if (until > lo) {
    sink({lo, until, params_.idle_power_w * (until - lo).seconds(), SegmentKind::kIdle, "IDLE"});
  }
  cursor_ = std::max(cursor_, until);
}

void BurstMachine::on_transfer(const TransferEvent& event, const SegmentSink& sink) {
  ctr_bursts_->inc();
  TimePoint start;
  std::size_t phase = kIdlePhase;
  if (!started_) {
    started_ = true;
    cursor_ = event.time;
    active_until_ = event.time;
    start = event.time;
  } else if (event.time >= active_until_) {
    emit_gap(event.time, sink, phase);
    start = event.time;
  } else {
    // The radio is still busy with the previous burst's airtime: this burst
    // queues behind it. No gap, no promotion.
    start = active_until_;
    phase = kNoPhase;
    ctr_bursts_queued_->inc();
  }

  if (phase != kNoPhase) {
    const PromotionParams& promo = phase == kIdlePhase
                                       ? params_.idle_promotion
                                       : params_.tail_phases[phase].repromotion;
    if (promo.enabled()) {
      (phase == kIdlePhase ? ctr_promotions_ : ctr_repromotions_)->inc();
      const TimePoint promo_end = start + promo.duration;
      sink({start, promo_end, promo.power_w * promo.duration.seconds(),
            SegmentKind::kPromotion, promo.state_name});
      start = promo_end;
    }
  }

  const Duration dur = transfer_duration(event.bytes, event.direction);
  const double per_byte = event.direction == Direction::kUplink ? params_.joules_per_byte_up
                                                                : params_.joules_per_byte_down;
  const TimePoint end = start + dur;
  sink({start, end,
        params_.active_power_w * dur.seconds() + per_byte * static_cast<double>(event.bytes),
        SegmentKind::kTransfer, params_.active_state_name});
  active_until_ = end;
  cursor_ = end;
}

void BurstMachine::on_transfers(const TransferEvent* events, std::size_t count,
                                const IndexedSegmentSink& sink) {
  // One adapter for the whole run — the default implementation's per-event
  // std::function construction is the cost this override amortizes.
  std::size_t index = 0;
  const SegmentSink adapter = [&sink, &index](const EnergySegment& s) { sink(index, s); };
  for (; index < count; ++index) on_transfer(events[index], adapter);
}

void BurstMachine::finish(TimePoint end, const SegmentSink& sink) {
  if (started_ && end > cursor_) {
    std::size_t phase = kIdlePhase;
    emit_gap(end, sink, phase);
  }
  reset();
}

bool BurstMachine::is_powered_at(TimePoint t) const {
  if (!started_) return false;
  return t < active_until_ + params_.total_tail();
}

void BurstMachine::reset() {
  started_ = false;
  cursor_ = {};
  active_until_ = {};
}

std::unique_ptr<RadioModel> make_lte_model() {
  return std::make_unique<BurstMachine>(lte_params());
}
std::unique_ptr<RadioModel> make_lte_fast_dormancy_model() {
  return std::make_unique<BurstMachine>(lte_fast_dormancy_params());
}
std::unique_ptr<RadioModel> make_umts_model() {
  return std::make_unique<BurstMachine>(umts_params());
}
std::unique_ptr<RadioModel> make_wifi_model() {
  return std::make_unique<BurstMachine>(wifi_params());
}

}  // namespace wildenergy::radio
