// Unit tests for the radio power models (src/radio/).
#include <gtest/gtest.h>

#include "radio/burst_machine.h"
#include "radio/timeline.h"

namespace wildenergy::radio {
namespace {

TEST(BurstMachine, IsolatedBurstMatchesClosedForm) {
  BurstMachine lte{lte_params()};
  RadioTimeline tl;
  lte.on_transfer({TimePoint{0}, 1000, Direction::kDownlink}, tl.sink());
  lte.finish(TimePoint{0} + hours(1.0), tl.sink());

  const double expected = lte.isolated_burst_energy(1000, Direction::kDownlink);
  // Timeline total additionally includes trailing idle energy.
  const double idle = lte_params().idle_power_w;
  EXPECT_NEAR(tl.total_joules() - tl.joules_of_kind(SegmentKind::kIdle), expected, 1e-9);
  EXPECT_GT(tl.joules_of_kind(SegmentKind::kIdle), 0.0);
  EXPECT_LT(tl.joules_of_kind(SegmentKind::kIdle), idle * 3600.0);
}

TEST(BurstMachine, SegmentsAreContiguous) {
  BurstMachine lte{lte_params()};
  RadioTimeline tl;
  TimePoint t{0};
  for (int i = 0; i < 20; ++i) {
    lte.on_transfer({t, 5000, Direction::kDownlink}, tl.sink());
    t += sec(i % 2 == 0 ? 3.0 : 40.0);  // alternate: within tail / past tail
  }
  lte.finish(t + minutes(5.0), tl.sink());
  EXPECT_TRUE(tl.is_contiguous());
}

TEST(BurstMachine, ArrivalWithinTailSkipsPromotion) {
  BurstMachine lte{lte_params()};
  RadioTimeline tl;
  lte.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl.sink());
  // 5 s later: well within the 11.6 s LTE tail.
  lte.on_transfer({TimePoint{0} + sec(5.0), 100, Direction::kDownlink}, tl.sink());
  lte.finish(TimePoint{0} + minutes(2.0), tl.sink());

  int promotions = 0;
  for (const auto& s : tl.segments()) {
    if (s.kind == SegmentKind::kPromotion) ++promotions;
  }
  EXPECT_EQ(promotions, 1);
}

TEST(BurstMachine, ArrivalAfterTailPaysPromotionAgain)
{
  BurstMachine lte{lte_params()};
  RadioTimeline tl;
  lte.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl.sink());
  lte.on_transfer({TimePoint{0} + minutes(5.0), 100, Direction::kDownlink}, tl.sink());
  lte.finish(TimePoint{0} + minutes(10.0), tl.sink());

  int promotions = 0;
  for (const auto& s : tl.segments()) {
    if (s.kind == SegmentKind::kPromotion) ++promotions;
  }
  EXPECT_EQ(promotions, 2);
}

TEST(BurstMachine, UmtsMidFachTailRequiresRepromotion) {
  BurstMachine umts{umts_params()};
  RadioTimeline tl;
  umts.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl.sink());
  // DCH tail is 5 s; FACH tail runs for the following 12 s. Arrive at +10 s
  // (in FACH) => FACH->DCH repromotion expected.
  umts.on_transfer({TimePoint{0} + sec(10.5), 100, Direction::kDownlink}, tl.sink());
  umts.finish(TimePoint{0} + minutes(2.0), tl.sink());

  int promotions = 0;
  bool saw_fach_to_dch = false;
  for (const auto& s : tl.segments()) {
    if (s.kind == SegmentKind::kPromotion) {
      ++promotions;
      if (std::string_view{s.state_name} == "UMTS_FACH_TO_DCH") saw_fach_to_dch = true;
    }
  }
  EXPECT_EQ(promotions, 2);
  EXPECT_TRUE(saw_fach_to_dch);
}

TEST(BurstMachine, QueuedTransfersSerializeWithoutGap) {
  BurstMachine lte{lte_params()};
  RadioTimeline tl;
  // Three bursts at the same instant: airtime must serialize back-to-back.
  for (int i = 0; i < 3; ++i) {
    lte.on_transfer({TimePoint{0}, 1'000'000, Direction::kDownlink}, tl.sink());
  }
  lte.finish(TimePoint{0} + minutes(2.0), tl.sink());
  EXPECT_TRUE(tl.is_contiguous());

  int transfers = 0;
  for (const auto& s : tl.segments()) {
    if (s.kind == SegmentKind::kTransfer) ++transfers;
  }
  EXPECT_EQ(transfers, 3);
}

TEST(BurstMachine, TailEnergyBoundedByTailParams) {
  const auto params = lte_params();
  BurstMachine lte{params};
  RadioTimeline tl;
  lte.on_transfer({TimePoint{0}, 100, Direction::kUplink}, tl.sink());
  lte.finish(TimePoint{0} + hours(1.0), tl.sink());

  double tail_cap = 0.0;
  for (const auto& phase : params.tail_phases) {
    tail_cap += phase.power_w * phase.duration.seconds();
  }
  EXPECT_LE(tl.joules_of_kind(SegmentKind::kTail), tail_cap + 1e-9);
  EXPECT_NEAR(tl.joules_of_kind(SegmentKind::kTail), tail_cap, 1e-9);
}

TEST(BurstMachine, FastDormancyCutsTailEnergy) {
  BurstMachine lte{lte_params()};
  BurstMachine fd{lte_fast_dormancy_params()};
  const double e_lte = lte.isolated_burst_energy(1000, Direction::kDownlink);
  const double e_fd = fd.isolated_burst_energy(1000, Direction::kDownlink);
  EXPECT_LT(e_fd, e_lte * 0.4);  // FD removes most of the 11.6 s tail
}

TEST(BurstMachine, UplinkCostsMoreThanDownlinkPerByte) {
  BurstMachine lte{lte_params()};
  const std::uint64_t big = 20'000'000;  // rate-limited regime
  EXPECT_GT(lte.isolated_burst_energy(big, Direction::kUplink),
            lte.isolated_burst_energy(big, Direction::kDownlink));
}

TEST(BurstMachine, SmallTransfersDominatedByTail) {
  // The paper's core premise: tiny periodic requests are disproportionately
  // expensive because tail energy is independent of payload size.
  BurstMachine lte{lte_params()};
  const double tiny = lte.isolated_burst_energy(200, Direction::kUplink);
  const double tail_only = lte_params().tail_phases[0].power_w * 1.0 +
                           lte_params().tail_phases[1].power_w * 10.576;
  EXPECT_GT(tail_only / tiny, 0.8);  // >80% of a tiny burst's energy is tail
}

TEST(BurstMachine, IsPoweredAtTracksTail) {
  BurstMachine lte{lte_params()};
  RadioTimeline tl;
  EXPECT_FALSE(lte.is_powered_at(TimePoint{0}));
  lte.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl.sink());
  EXPECT_TRUE(lte.is_powered_at(TimePoint{0} + sec(5.0)));
  EXPECT_FALSE(lte.is_powered_at(TimePoint{0} + sec(60.0)));
}

TEST(BurstMachine, ResetForgetsHistory) {
  BurstMachine lte{lte_params()};
  RadioTimeline tl;
  lte.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl.sink());
  lte.reset();
  EXPECT_FALSE(lte.is_powered_at(TimePoint{0} + sec(1.0)));

  // After reset the machine accepts a fresh stream starting earlier.
  RadioTimeline tl2;
  lte.on_transfer({TimePoint{0}, 100, Direction::kDownlink}, tl2.sink());
  lte.finish(TimePoint{0} + minutes(1.0), tl2.sink());
  EXPECT_TRUE(tl2.is_contiguous());
}

// Property sweep: energy is monotone in payload bytes for every model.
class ModelEnergyMonotone : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelEnergyMonotone, EnergyMonotoneInBytes) {
  std::unique_ptr<RadioModel> model;
  const std::string_view which = GetParam();
  if (which == "lte") model = make_lte_model();
  if (which == "lte_fd") model = make_lte_fast_dormancy_model();
  if (which == "umts") model = make_umts_model();
  if (which == "wifi") model = make_wifi_model();
  ASSERT_NE(model, nullptr);

  auto* machine = dynamic_cast<BurstMachine*>(model.get());
  ASSERT_NE(machine, nullptr);
  double prev = 0.0;
  for (std::uint64_t bytes : {0ULL, 100ULL, 10'000ULL, 1'000'000ULL, 100'000'000ULL}) {
    const double e = machine->isolated_burst_energy(bytes, Direction::kDownlink);
    EXPECT_GE(e, prev) << which << " bytes=" << bytes;
    EXPECT_GT(e, 0.0);
    prev = e;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelEnergyMonotone,
                         ::testing::Values("lte", "lte_fd", "umts", "wifi"));

}  // namespace
}  // namespace wildenergy::radio
