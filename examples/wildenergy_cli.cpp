// wildenergy CLI: one binary covering the library's main workflows.
//
//   example_wildenergy_cli generate [--days N] [--users N] [--seed S]
//                                   [--format csv|bin] > trace.{csv,bin}
//       Synthesize a study and stream the energy-annotated trace to stdout.
//
//   example_wildenergy_cli analyze [--format csv|bin] [--replay FILE]
//                                  [--read-policy strict|skip-and-count|best-effort]
//                                  [--corrupt KIND [--corrupt-seed N]] < trace.{csv,bin}
//       Re-attribute an external trace (LTE model) and print the report card.
//       --replay reads FILE instead of stdin; --read-policy picks how hard
//       the reader fails on damage; --corrupt injects one deterministic
//       corruption (fault/injector.h) before parsing, for demos and tests.
//
//   example_wildenergy_cli report [--days N] [--users N] [--seed S]
//       Simulate and print the report card directly (no intermediate file).
//
//   example_wildenergy_cli figures [--days N] [--users N] [--seed S]
//       Print the headline numbers of every paper figure in one run.
//
//   example_wildenergy_cli run [--days N] [--users N] [--seed S]
//       Run the pipeline and print the one-line run summary — the smallest
//       harness for the observability flags below (DESIGN.md §11).
//
//   example_wildenergy_cli sweep [--days N] [--users N] [--seed S]
//                                [--threads N] [--progress]
//       Simulate once, replay a fixed what-if scenario set (baseline,
//       kill-after-idle 1/3/7 days, doze) over the cached trace and print
//       one row per scenario. --progress reports completed (scenario x user)
//       shards to stderr as the sweep runs.
//
// Observability (generate/report/figures/run/sweep): --stats prints the
// per-stage wall-time + throughput breakdown after the run (under
// --threads N the per-shard profiles are merged; see DESIGN.md §11);
// --stats-json FILE writes the structured run report
// (schema wildenergy.run_stats.v2) for dashboards and regression tooling;
// --trace-out FILE writes Chrome trace-event spans loadable at
// https://ui.perfetto.dev.
//
// Execution: --threads N shards the study by user across a worker pool
// (core/pipeline.h); every number printed is bit-identical to --threads 1.
//
// Resilience (generate/report/figures): --inject-fault user=U,nth=N[,attempts=A]
// scripts a shard failure (repeatable); --failure-policy retry-then-skip with
// --max-shard-retries N retries failed shards and skips their users instead
// of aborting the run.
//
// Checkpoint/resume (run/sweep/analyze): --checkpoint-dir DIR snapshots the
// sink state every --checkpoint-every completed users (src/ckpt/, DESIGN.md
// §13); --resume continues from the newest good checkpoint, bit-identical to
// an uninterrupted run; --inject-ckpt-fault nth=N,kind=hard-stop|short-write|
// io-error scripts checkpoint-write failures for kill-and-recover testing.
//
// Out-of-core (run/sweep/analyze; DESIGN.md §14): --population N swaps the
// fixed study for a parameterized fleet (deterministic per user id — user k's
// stream is identical at any population size); --store-dir DIR captures
// through a SpillingTraceStore that seals WESG segments on disk instead of
// holding every column in RAM; --store-budget BYTES caps the resident
// columns (0 = fully out-of-core). `analyze --store-dir DIR` re-attributes a
// previously sealed directory; `--resume` with --store-dir reuses sealed
// segments instead of regenerating them.
//
// Exit codes: 0 success; 1 runtime/data failure (unreadable or corrupt input,
// run aborted by a fault, unwritable output, missing/corrupt/stale checkpoint
// on --resume); 2 usage error (bad command or flag value, --resume without
// --checkpoint-dir).
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diversity.h"
#include "ckpt/checkpoint.h"
#include "ckpt/checkpointable.h"
#include "ckpt/resume_sinks.h"
#include "analysis/figures.h"
#include "analysis/persistence.h"
#include "analysis/time_since_fg.h"
#include "core/pipeline.h"
#include "core/policy.h"
#include "core/report.h"
#include "core/sweep.h"
#include "energy/attributor.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/trace_writer.h"
#include "sim/generator.h"
#include "sim/population.h"
#include "power/battery.h"
#include "radio/burst_machine.h"
#include "trace/binary_io.h"
#include "trace/csv_io.h"
#include "trace/read_policy.h"
#include "trace/spilling_store.h"
#include "trace/validating_sink.h"
#include "util/table.h"

namespace {

using namespace wildenergy;

struct CliOptions {
  sim::StudyConfig study;
  std::string format = "csv";
  bool format_set = false;  ///< --format given explicitly (analyze sniffs otherwise)
  bool stats = false;
  std::string stats_json;  ///< --stats-json FILE: structured run report
  bool progress = false;   ///< --progress: per-shard sweep progress on stderr
  std::string trace_out;
  unsigned threads = 1;
  /// 0 = per-record event path. Threads through both the pipeline
  /// (PipelineOptions::batch_size) and the analyze readers
  /// (ReadOptions::batch_size) — one knob, one shared default.
  std::size_t batch_size = trace::kDefaultBatchSize;
  // Ingestion robustness (analyze).
  std::string replay;  ///< file to read instead of stdin
  trace::ReadPolicy read_policy = trace::ReadPolicy::kStrict;
  std::optional<fault::CorruptionKind> corrupt_kind;
  std::uint64_t corrupt_seed = 0;
  // Execution resilience (generate/report/figures).
  std::vector<fault::ShardFaultSpec> faults;
  core::FailurePolicy failure_policy = core::FailurePolicy::kFailFast;
  unsigned max_shard_retries = 2;
  // Checkpoint/restore (run/sweep/analyze; src/ckpt/, DESIGN.md §13).
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 4;
  bool resume = false;
  std::vector<fault::CheckpointFaultSpec> ckpt_faults;  ///< kill-and-recover harness
  // Out-of-core trace plane (run/sweep/analyze; DESIGN.md §14).
  std::string store_dir;           ///< spill sealed WESG segments here
  std::uint64_t store_budget = 0;  ///< resident column budget; 0 = fully out-of-core
  // Fold-and-release account plane (run/sweep; DESIGN.md §15).
  std::string account_dir;           ///< spill per-user WEAC detail rows here
  std::uint64_t account_budget = 0;  ///< resident spill budget; 0 = default
};

/// Strict base-10 parse: the whole string must be a number (no "12abc" -> 12,
/// no "foo" -> 0 as with atol) and it must satisfy min_value.
bool parse_int_flag(std::string_view flag, const char* value, long long min_value,
                    long long& out) {
  if (value == nullptr || *value == '\0') {
    std::cerr << flag << " requires a value\n";
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0' || parsed < min_value) {
    std::cerr << flag << " expects an integer >= " << min_value << ", got '" << value << "'\n";
    return false;
  }
  out = parsed;
  return true;
}

bool parse_flags(int argc, char** argv, int start, CliOptions& options) {
  // --population lowers a sim::PopulationConfig onto the study at the end of
  // parsing; these track which of its defaults an explicit flag overrides.
  bool users_set = false;
  bool days_set = false;
  bool store_budget_set = false;
  bool account_budget_set = false;
  long long population = 0;
  for (int i = start; i < argc; ++i) {
    const std::string_view flag = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    long long value = 0;
    if (flag == "--days") {
      if (!parse_int_flag(flag, next(), 1, value)) return false;
      options.study.num_days = value;
      days_set = true;
    } else if (flag == "--users") {
      if (!parse_int_flag(flag, next(), 1, value)) return false;
      options.study.num_users = static_cast<std::uint32_t>(value);
      users_set = true;
    } else if (flag == "--population") {
      if (!parse_int_flag(flag, next(), 1, value)) return false;
      population = value;
    } else if (flag == "--store-dir") {
      const char* v = next();
      if (!v || *v == '\0') {
        std::cerr << "--store-dir requires a directory path\n";
        return false;
      }
      options.store_dir = v;
    } else if (flag == "--store-budget") {
      if (!parse_int_flag(flag, next(), 0, value)) return false;
      options.store_budget = static_cast<std::uint64_t>(value);
      store_budget_set = true;
    } else if (flag == "--account-dir") {
      const char* v = next();
      if (!v || *v == '\0') {
        std::cerr << "--account-dir requires a directory path\n";
        return false;
      }
      options.account_dir = v;
    } else if (flag == "--account-budget") {
      if (!parse_int_flag(flag, next(), 0, value)) return false;
      options.account_budget = static_cast<std::uint64_t>(value);
      account_budget_set = true;
    } else if (flag == "--seed") {
      if (!parse_int_flag(flag, next(), 0, value)) return false;
      options.study.seed = static_cast<std::uint64_t>(value);
    } else if (flag == "--format") {
      const char* v = next();
      if (!v) {
        std::cerr << "--format requires a value\n";
        return false;
      }
      options.format = v;
      options.format_set = true;
    } else if (flag == "--threads") {
      if (!parse_int_flag(flag, next(), 1, value)) return false;
      options.threads = static_cast<unsigned>(value);
    } else if (flag == "--batch-size") {
      if (!parse_int_flag(flag, next(), 0, value)) return false;
      options.batch_size = static_cast<std::size_t>(value);
    } else if (flag == "--replay") {
      const char* v = next();
      if (!v || *v == '\0') {
        std::cerr << "--replay requires a file path\n";
        return false;
      }
      options.replay = v;
    } else if (flag == "--read-policy") {
      const char* v = next();
      const std::string_view name = v != nullptr ? v : "";
      if (name == "strict") {
        options.read_policy = trace::ReadPolicy::kStrict;
      } else if (name == "skip-and-count") {
        options.read_policy = trace::ReadPolicy::kSkipAndCount;
      } else if (name == "best-effort") {
        options.read_policy = trace::ReadPolicy::kBestEffort;
      } else {
        std::cerr << "--read-policy expects strict|skip-and-count|best-effort, got '" << name
                  << "'\n";
        return false;
      }
    } else if (flag == "--corrupt") {
      const char* v = next();
      const auto kind = fault::parse_corruption_kind(v != nullptr ? v : "");
      if (!kind.ok()) {
        std::cerr << "--corrupt: " << kind.status().message() << "\n";
        return false;
      }
      options.corrupt_kind = kind.value();
    } else if (flag == "--corrupt-seed") {
      if (!parse_int_flag(flag, next(), 0, value)) return false;
      options.corrupt_seed = static_cast<std::uint64_t>(value);
    } else if (flag == "--inject-fault") {
      const char* v = next();
      const auto spec = fault::parse_shard_fault_spec(v != nullptr ? v : "");
      if (!spec.ok()) {
        std::cerr << "--inject-fault: " << spec.status().message() << "\n";
        return false;
      }
      options.faults.push_back(spec.value());
    } else if (flag == "--failure-policy") {
      const char* v = next();
      const std::string_view name = v != nullptr ? v : "";
      if (name == "failfast") {
        options.failure_policy = core::FailurePolicy::kFailFast;
      } else if (name == "retry-then-skip") {
        options.failure_policy = core::FailurePolicy::kRetryThenSkip;
      } else {
        std::cerr << "--failure-policy expects failfast|retry-then-skip, got '" << name << "'\n";
        return false;
      }
    } else if (flag == "--max-shard-retries") {
      if (!parse_int_flag(flag, next(), 0, value)) return false;
      options.max_shard_retries = static_cast<unsigned>(value);
    } else if (flag == "--checkpoint-dir") {
      const char* v = next();
      if (!v || *v == '\0') {
        std::cerr << "--checkpoint-dir requires a directory path\n";
        return false;
      }
      options.checkpoint_dir = v;
    } else if (flag == "--checkpoint-every") {
      if (!parse_int_flag(flag, next(), 1, value)) return false;
      options.checkpoint_every = static_cast<std::size_t>(value);
    } else if (flag == "--resume") {
      options.resume = true;
    } else if (flag == "--inject-ckpt-fault") {
      const char* v = next();
      const auto spec = fault::parse_checkpoint_fault_spec(v != nullptr ? v : "");
      if (!spec.ok()) {
        std::cerr << "--inject-ckpt-fault: " << spec.status().message() << "\n";
        return false;
      }
      options.ckpt_faults.push_back(spec.value());
    } else if (flag == "--stats") {
      options.stats = true;
    } else if (flag == "--stats-json") {
      const char* v = next();
      if (!v || *v == '\0') {
        std::cerr << "--stats-json requires a file path\n";
        return false;
      }
      options.stats_json = v;
    } else if (flag == "--progress") {
      options.progress = true;
    } else if (flag == "--trace-out") {
      const char* v = next();
      if (!v || *v == '\0') {
        std::cerr << "--trace-out requires a file path\n";
        return false;
      }
      options.trace_out = v;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  if (options.format != "csv" && options.format != "bin") {
    std::cerr << "--format expects csv or bin, got '" << options.format << "'\n";
    return false;
  }
  // Usage errors (exit 2), distinct from a missing/corrupt checkpoint at
  // runtime (exit 1): the flag combination itself is wrong.
  if (options.resume && options.checkpoint_dir.empty() && options.store_dir.empty()) {
    std::cerr << "--resume requires --checkpoint-dir or --store-dir\n";
    return false;
  }
  if (!options.ckpt_faults.empty() && options.checkpoint_dir.empty()) {
    std::cerr << "--inject-ckpt-fault requires --checkpoint-dir\n";
    return false;
  }
  if (store_budget_set && options.store_dir.empty()) {
    std::cerr << "--store-budget requires --store-dir\n";
    return false;
  }
  if (account_budget_set && options.account_dir.empty()) {
    std::cerr << "--account-budget requires --account-dir\n";
    return false;
  }
  if (population > 0) {
    if (users_set) {
      std::cerr << "--population and --users are mutually exclusive\n";
      return false;
    }
    sim::PopulationConfig pc;
    pc.num_users = static_cast<std::uint32_t>(population);
    pc.seed = options.study.seed;  // honors an explicit --seed (default 42 either way)
    if (days_set) pc.num_days = options.study.num_days;
    options.study = pc.study();
  }
  return true;
}

/// Pipeline options for the requested observability and resilience level,
/// bound to `writer` and `plan` (both must outlive the pipeline's run).
core::PipelineOptions observed_options(const CliOptions& options, obs::TraceWriter& writer,
                                       fault::FaultPlan& plan) {
  core::PipelineOptions pipeline_options;
  // The JSON report carries the per-stage profile too, so either flag turns
  // stage collection on.
  pipeline_options.collect_stage_stats = options.stats || !options.stats_json.empty();
  pipeline_options.num_threads = options.threads;
  pipeline_options.batch_size = options.batch_size;
  if (!options.trace_out.empty()) pipeline_options.trace_writer = &writer;
  pipeline_options.failure_policy = options.failure_policy;
  pipeline_options.max_shard_retries = options.max_shard_retries;
  pipeline_options.checkpoint_dir = options.checkpoint_dir;
  pipeline_options.checkpoint_every_users = options.checkpoint_every;
  pipeline_options.resume = options.resume;
  pipeline_options.account_dir = options.account_dir;
  pipeline_options.account_budget_bytes = options.account_budget;
  for (const auto& spec : options.faults) plan.add(spec);
  for (const auto& spec : options.ckpt_faults) plan.add_checkpoint_fault(spec);
  if (!options.faults.empty() || !options.ckpt_faults.empty()) {
    pipeline_options.fault_plan = &plan;
  }
  return pipeline_options;
}

/// run() with failures surfaced as an exit-code-1 diagnostic instead of an
/// unhandled exception (an injected fault under --failure-policy failfast
/// propagates out of run() by design). Returns the run's stats on success.
std::optional<obs::RunStats> run_guarded(core::StudyPipeline& pipeline) {
  util::StatusOr<obs::RunStats> stats = util::Status::internal("run did not start");
  try {
    stats = pipeline.run();
  } catch (const std::exception& e) {
    std::cerr << "run failed: " << e.what() << "\n";
    return std::nullopt;
  }
  if (!stats.ok()) {
    std::cerr << "run failed: " << stats.status().to_string() << "\n";
    return std::nullopt;
  }
  if (!stats->failed_users.empty()) {
    std::cerr << "warning: skipped " << stats->failed_users.size() << " user(s) after "
              << stats->shard_retries << " shard retr" << (stats->shard_retries == 1 ? "y" : "ies")
              << "; results cover the surviving users only (--stats for details)\n";
  }
  return std::move(stats).value();
}

/// Resume/checkpoint facts on stderr after a successful run — recovery is
/// never silent (DESIGN.md §13). Shared by run/report/figures/sweep; the
/// analyze path prints its own (its writer lives outside RunStats).
void print_checkpoint_notes(const CliOptions& options, const obs::RunStats& stats) {
  if (options.checkpoint_dir.empty()) return;
  if (options.resume) {
    std::cerr << "resumed: skipped " << stats.resumed_users << " already-completed user(s)";
    if (stats.recovered_from_seq != 0) {
      std::cerr << " (recovered from checkpoint seq " << stats.recovered_from_seq
                << " past a damaged newer one)";
    }
    std::cerr << "\n";
  }
  std::cerr << "checkpoints: " << stats.checkpoints_written << " written";
  if (stats.checkpoint_write_failures > 0) {
    std::cerr << ", " << stats.checkpoint_write_failures << " write failure(s)";
  }
  std::cerr << "\n";
}

/// After run(): print --stats to `os`, write --stats-json, write --trace-out.
/// Returns false (and complains) only if an output file cannot be written.
bool finish_observability(const CliOptions& options, const obs::RunStats& stats,
                          const obs::TraceWriter& writer, std::ostream& os) {
  if (options.stats) {
    os << "\n";
    stats.print(os);
  }
  if (!options.stats_json.empty()) {
    std::ofstream json{options.stats_json};
    if (!json) {
      std::cerr << "cannot write stats to " << options.stats_json << "\n";
      return false;
    }
    json << stats.to_json() << "\n";
    std::cerr << "wrote run stats (wildenergy.run_stats.v2) to " << options.stats_json << "\n";
  }
  if (!options.trace_out.empty()) {
    if (!writer.write_file(options.trace_out)) {
      std::cerr << "cannot write trace to " << options.trace_out << "\n";
      return false;
    }
    std::cerr << "wrote " << writer.span_count() << " spans to " << options.trace_out
              << " (open at https://ui.perfetto.dev)\n";
  }
  return true;
}

int cmd_generate(const CliOptions& options) {
  obs::TraceWriter spans;
  fault::FaultPlan plan;
  sim::StudyGenerator generator{options.study};
  core::StudyPipeline pipeline{&generator, observed_options(options, spans, plan)};
  std::optional<obs::RunStats> stats;
  if (options.format == "bin") {
    trace::BinaryTraceWriter writer{std::cout};
    pipeline.add_analysis("binary-out", &writer);
    stats = run_guarded(pipeline);
  } else {
    trace::CsvTraceWriter writer{std::cout};
    pipeline.add_analysis("csv-out", &writer);
    stats = run_guarded(pipeline);
  }
  if (!stats) return 1;
  std::cerr << "generated " << options.study.num_users << " users x "
            << options.study.num_days << " days; "
            << fmt(pipeline.ledger().total_joules() / 1e3, 1) << " kJ attributed\n";
  // stdout carries the trace stream, so stats go to stderr here.
  return finish_observability(options, *stats, spans, std::cerr) ? 0 : 1;
}

/// First few quarantined records, one line each, to stderr.
void print_quarantine(const std::vector<trace::QuarantinedRecord>& quarantine) {
  for (const auto& q : quarantine) {
    std::cerr << "  quarantined [" << q.location << "] " << q.reason;
    if (!q.snippet.empty()) std::cerr << ": " << q.snippet;
    std::cerr << "\n";
  }
}

/// analyze --store-dir DIR: re-attribute a sealed spill directory (the WESG
/// segments a previous `run`/`sweep --store-dir` left behind) instead of a
/// CSV/WETR stream. Bounded-memory replay straight off the mapped segments.
int cmd_analyze_store(const CliOptions& options) {
  if (!options.checkpoint_dir.empty() || !options.replay.empty() || options.corrupt_kind) {
    std::cerr << "analyze --store-dir cannot be combined with --checkpoint-dir, --replay, or "
                 "--corrupt\n";
    return 2;
  }
  trace::SpillOptions spill;
  spill.dir = options.store_dir;
  trace::SpillingTraceStore store{std::move(spill)};
  if (const util::Status opened = store.open_existing(); !opened.ok()) {
    std::cerr << "cannot open --store-dir '" << options.store_dir
              << "': " << opened.to_string() << "\n";
    return 1;
  }
  if (store.empty()) {
    std::cerr << "store at '" << options.store_dir << "' holds no sealed users\n";
    return 1;
  }

  energy::EnergyLedger ledger;
  analysis::PersistenceAnalysis persistence;
  trace::TraceMulticast sinks;
  sinks.add(&ledger);
  sinks.add(&persistence);
  energy::EnergyAttributor attributor{radio::make_lte_model, &sinks};
  trace::ReadOptions read_options{options.read_policy};
  read_options.batch_size = options.batch_size;
  trace::ValidatingSink validator{&attributor, read_options};
  if (const util::Status replayed = store.emit(validator, options.batch_size);
      !replayed.ok()) {
    std::cerr << "replay error: " << replayed.to_string() << "\n";
    return 1;
  }
  if (!validator.status().ok()) {
    std::cerr << "protocol error: " << validator.status().message() << "\n";
    print_quarantine(validator.quarantine());
    return 1;
  }
  std::cerr << "replayed " << store.num_users() << " sealed user(s), "
            << store.num_segments() << " segment(s), "
            << fmt(static_cast<double>(store.spilled_bytes()) / 1e6, 1) << " MB\n";
  const auto catalog = appmodel::AppCatalog::full_catalog(options.study.seed);
  core::Report::build(ledger, catalog, &persistence).print(std::cout);
  return 0;
}

int cmd_analyze(const CliOptions& options) {
  if (!options.store_dir.empty()) return cmd_analyze_store(options);
  // Input: stdin by default, --replay FILE otherwise; always opened binary so
  // WETR payloads survive untranslated.
  std::ifstream file;
  if (!options.replay.empty()) {
    file.open(options.replay, std::ios::binary);
    if (!file) {
      std::cerr << "cannot read --replay file '" << options.replay
                << "': " << std::strerror(errno) << "\n";
      return 1;
    }
  }
  std::istream& raw = options.replay.empty() ? std::cin : file;

  // --corrupt: buffer the whole input and damage it deterministically first.
  std::istringstream corrupted;
  std::istream* input = &raw;
  if (options.corrupt_kind) {
    std::ostringstream buffer;
    buffer << raw.rdbuf();
    auto damaged = fault::apply_corruption(
        std::move(buffer).str(), {*options.corrupt_kind, options.corrupt_seed});
    if (!damaged.ok()) {
      std::cerr << "cannot corrupt input: " << damaged.status().message() << "\n";
      return 1;
    }
    std::cerr << "injected " << fault::to_string(*options.corrupt_kind) << " (seed "
              << options.corrupt_seed << ") before parsing\n";
    corrupted.str(std::move(damaged).value());
    input = &corrupted;
  }

  energy::EnergyLedger ledger;
  analysis::PersistenceAnalysis persistence;
  trace::TraceMulticast sinks;
  sinks.add(&ledger);
  sinks.add(&persistence);
  energy::EnergyAttributor attributor{radio::make_lte_model, &sinks};
  // The reader validates syntax/fields; the ValidatingSink behind it enforces
  // the stream protocol (bracketing, time order) under the same policy.
  trace::ReadOptions read_options{options.read_policy};
  read_options.batch_size = options.batch_size;
  trace::ValidatingSink validator{&attributor, read_options};

  // Without an explicit --format, sniff the input: the WETR magic starts
  // with 'W', which no CSV record tag (M/U/P/T/V/E) does. A one-byte peek
  // works on unseekable stdin too.
  bool binary = options.format == "bin";
  if (!options.format_set) binary = input->peek() == 'W';

  // Both readers are TraceSources reporting through one format-independent
  // ReadSummary, so a single result block covers CSV and binary (previously
  // one hand-rolled copy per reader result type).
  trace::CsvTraceSource csv_source{*input, read_options};
  trace::BinaryTraceSource binary_source{*input, read_options};
  trace::TraceSource& source =
      binary ? static_cast<trace::TraceSource&>(binary_source) : csv_source;

  // --checkpoint-dir: snapshot the attribution state (attributor, ledger,
  // persistence) every --checkpoint-every completed users, so a killed
  // analyze can --resume mid-trace. Same decorator stack as the pipeline's
  // forward-only path (src/ckpt/resume_sinks.h): completed user brackets are
  // skipped at the entry and their state folded back from the checkpoint.
  fault::FaultPlan ckpt_plan;
  std::vector<std::pair<std::string, ckpt::CheckpointableSink*>> checkpointables;
  std::unique_ptr<ckpt::CheckpointWriter> ckpt_writer;
  std::unique_ptr<ckpt::CheckpointingSink> ckpt_sink;
  std::unique_ptr<ckpt::UserSkipFilter> skip_filter;
  util::Status restore_status;
  trace::TraceSink* entry = &validator;
  if (!options.checkpoint_dir.empty()) {
    checkpointables = {{"attributor", &attributor}, {"ledger", &ledger},
                       {"persistence", &persistence}};
    for (const auto& spec : options.ckpt_faults) ckpt_plan.add_checkpoint_fault(spec);
    ckpt::CheckpointWriterOptions writer_options;
    if (!options.ckpt_faults.empty()) writer_options.fault_plan = &ckpt_plan;
    ckpt_writer = std::make_unique<ckpt::CheckpointWriter>(options.checkpoint_dir,
                                                           writer_options);
    std::optional<ckpt::Snapshot> resumed_snapshot;
    if (options.resume) {
      auto loaded = ckpt::CheckpointReader::load_latest(options.checkpoint_dir);
      if (!loaded.ok()) {
        std::cerr << "resume failed: " << loaded.status().to_string() << "\n";
        return 1;
      }
      if (loaded->recovered_from_seq != 0) {
        std::cerr << "warning: recovered from checkpoint seq " << loaded->recovered_from_seq
                  << " (newer checkpoints damaged)\n";
      }
      ckpt_writer->set_next_seq(loaded->seq + 1);
      resumed_snapshot = std::move(loaded->snapshot);
    }
    ckpt_sink = std::make_unique<ckpt::CheckpointingSink>(
        &validator, options.checkpoint_every, [&]() {
          if (!restore_status.ok()) return;  // never snapshot over a bad restore
          ckpt::Snapshot snap;
          snap.meta = source.meta();
          snap.completed_users = ckpt_sink->completed_users();
          for (const auto& [name, sink] : checkpointables) {
            ckpt::ByteWriter out;
            sink->save_state(out);
            snap.add_section(name, out.take());
          }
          (void)ckpt_writer->write(snap);  // failures counted; the read continues
        });
    if (resumed_snapshot) {
      ckpt_sink->seed_completed(resumed_snapshot->completed_users);
      skip_filter = std::make_unique<ckpt::UserSkipFilter>(
          ckpt_sink.get(), resumed_snapshot->completed_users);
      ckpt_sink->set_restore_hook(
          [&, snap = std::move(*resumed_snapshot)](const trace::StudyMeta& meta) {
            restore_status.update(ckpt::check_snapshot_meta(snap, meta));
            if (!restore_status.ok()) return;
            for (const auto& [name, sink] : checkpointables) {
              const std::string* payload = snap.section(name);
              if (payload == nullptr) {
                restore_status.update(util::Status::failed_precondition(
                    "checkpoint holds no state for sink '" + name + "'"));
                return;
              }
              ckpt::ByteReader in{*payload};
              if (util::Status st = sink->restore_state(in); !st.ok()) {
                restore_status.update({st.code(), "sink '" + name + "': " + st.message()});
                return;
              }
            }
          });
      entry = skip_filter.get();
    } else {
      entry = ckpt_sink.get();
    }
  }

  util::Status read_status = util::Status::ok_status();
  try {
    read_status = source.emit(*entry, options.batch_size);
  } catch (const std::exception& e) {
    // An injected hard-stop checkpoint fault lands here: the checkpoint is
    // on disk, the process "dies" with a runtime failure.
    std::cerr << "analyze failed: " << e.what() << "\n";
    return 1;
  }
  if (!restore_status.ok()) {
    std::cerr << "resume failed: " << restore_status.to_string() << "\n";
    return 1;
  }
  if (skip_filter != nullptr) {
    std::cerr << "resumed: skipped " << skip_filter->skipped_users()
              << " already-completed user(s)\n";
  }
  if (ckpt_writer != nullptr) {
    std::cerr << "checkpoints: " << ckpt_writer->checkpoints_written() << " written";
    if (ckpt_writer->write_failures() > 0) {
      std::cerr << ", " << ckpt_writer->write_failures() << " write failure(s)";
    }
    std::cerr << "\n";
  }
  const trace::ReadSummary& summary =
      binary ? binary_source.summary() : csv_source.summary();
  if (!read_status.ok()) {
    std::cerr << "parse error: " << read_status.message() << "\n";
    print_quarantine(summary.quarantine);
    return 1;
  }
  if (!summary.checksum_ok) std::cerr << "warning: checksum mismatch (best-effort read)\n";
  print_quarantine(summary.quarantine);
  std::uint64_t dropped = summary.records_dropped;
  std::uint64_t repaired = summary.records_repaired;
  const bool truncated = summary.truncated;
  if (!validator.status().ok()) {
    std::cerr << "protocol error: " << validator.status().message() << "\n";
    print_quarantine(validator.quarantine());
    return 1;
  }
  dropped += validator.records_dropped();
  repaired += validator.records_repaired();
  print_quarantine(validator.quarantine());
  if (dropped > 0 || repaired > 0 || truncated) {
    std::cerr << "degraded read: " << dropped << " record(s) dropped, " << repaired
              << " repaired" << (truncated ? ", stream truncated before the E record" : "")
              << "\n";
  }

  // App names are unknown for external traces; use the default catalog's
  // names where ids overlap, "appN" otherwise.
  const auto catalog = appmodel::AppCatalog::full_catalog(options.study.seed);
  core::Report::build(ledger, catalog, &persistence).print(std::cout);
  return 0;
}

int cmd_report(const CliOptions& options) {
  obs::TraceWriter spans;
  fault::FaultPlan plan;
  sim::StudyGenerator generator{options.study};
  core::StudyPipeline pipeline{&generator, observed_options(options, spans, plan)};
  analysis::PersistenceAnalysis persistence;
  pipeline.add_analysis("persistence", &persistence);
  const auto stats = run_guarded(pipeline);
  if (!stats) return 1;
  print_checkpoint_notes(options, *stats);
  const auto report =
      core::Report::build(pipeline.ledger(), generator.catalog(), &persistence);
  report.print(std::cout);

  const double days_observed = static_cast<double>(options.study.num_days);
  const double per_user_day = pipeline.ledger().total_joules() /
                              static_cast<double>(options.study.num_users) / days_observed;
  std::cout << "\nbattery impact: network energy costs the average user "
            << fmt(power::battery_percent(per_user_day), 1)
            << "% of a Galaxy S III battery per day\n";
  return finish_observability(options, *stats, spans, std::cout) ? 0 : 1;
}

int cmd_figures(const CliOptions& options) {
  obs::TraceWriter spans;
  fault::FaultPlan plan;
  sim::StudyGenerator generator{options.study};
  core::StudyPipeline pipeline{&generator, observed_options(options, spans, plan)};
  analysis::PersistenceAnalysis persistence;
  analysis::TimeSinceForegroundAnalysis tsf;
  pipeline.add_analysis("persistence", &persistence);
  pipeline.add_analysis("time-since-fg", &tsf);
  const auto stats = run_guarded(pipeline);
  if (!stats) return 1;
  print_checkpoint_notes(options, *stats);
  const auto& ledger = pipeline.ledger();

  const auto overall = analysis::overall_state_breakdown(ledger);
  const auto diversity = analysis::top_n_diversity(ledger);
  const auto top_energy = analysis::top_consumers_by_energy(ledger, 3);
  const trace::AppId chrome = generator.catalog().find("Chrome");

  std::cout << "paper headline checks (" << options.study.num_users << " users, "
            << options.study.num_days << " days, seed " << options.study.seed << "):\n"
            << "  [Fig 1] universal top-10 apps: " << diversity.universal_apps
            << ", single-user favourites: " << diversity.single_user_apps << "\n"
            << "  [Fig 2] top energy app: " << generator.catalog().name(top_energy[0].app)
            << " (" << fmt(top_energy[0].joules / 1e3, 1) << " kJ)\n"
            << "  [Fig 3] background energy share: "
            << fmt(100 * overall.background_fraction(), 1) << "%  (paper: 84%)\n"
            << "  [Fig 5] Chrome transitions with >1 h persisting traffic: "
            << fmt(100 * persistence.fraction_persisting_longer_than(chrome, hours(1.0)), 2)
            << "%\n"
            << "  [Fig 6] apps frontloading >=80% of bg bytes into 60 s: "
            << fmt(100 * tsf.fraction_of_apps_frontloaded(), 1) << "%  (paper: 84%)\n";
  return finish_observability(options, *stats, spans, std::cout) ? 0 : 1;
}

/// The smallest observability harness: run the pipeline, print the one-line
/// run summary, then let --stats / --stats-json / --trace-out do their thing.
/// With --store-dir the study is captured into a SpillingTraceStore first
/// (bounded resident columns, sealed WESG segments) and the pipeline replays
/// the store — outputs bit-identical to the direct run.
int cmd_run(const CliOptions& options) {
  obs::TraceWriter spans;
  fault::FaultPlan plan;
  core::PipelineOptions pipeline_options = observed_options(options, spans, plan);
  std::optional<sim::StudyGenerator> generator;
  std::optional<trace::SpillingTraceStore> store;
  std::optional<core::StudyPipeline> pipeline;
  if (!options.store_dir.empty()) {
    generator.emplace(options.study);
    trace::SpillOptions spill;
    spill.dir = options.store_dir;
    spill.budget_bytes = options.store_budget;
    spill.resume = options.resume;
    store.emplace(std::move(spill));
    if (const util::Status captured = store->capture(*generator, options.batch_size);
        !captured.ok()) {
      std::cerr << "capture failed: " << captured.to_string() << "\n";
      return 1;
    }
    if (options.resume) {
      std::cerr << "resumed: reused " << store->resumed_users() << " sealed user(s) from "
                << options.store_dir << "\n";
    }
    // The store consumed --resume; only a checkpointed pipeline resumes too.
    if (options.checkpoint_dir.empty()) pipeline_options.resume = false;
    pipeline.emplace(&*store, pipeline_options);
  } else {
    generator.emplace(options.study);
    pipeline.emplace(&*generator, pipeline_options);
  }
  const auto stats = run_guarded(*pipeline);
  if (!stats) return 1;
  print_checkpoint_notes(options, *stats);
  std::cout << "run: " << stats->users << " users, " << stats->packets << " packets, "
            << fmt(stats->joules / 1e3, 1) << " kJ in " << fmt(stats->wall_ms, 1) << " ms ("
            << stats->num_threads << " thread" << (stats->num_threads > 1 ? "s" : "") << ")\n";
  if (store) {
    std::cout << "store: " << store->event_count() << " events; "
              << fmt(static_cast<double>(store->spilled_bytes()) / 1e6, 1) << " MB in "
              << store->num_segments() << " segment(s) on disk, peak resident "
              << fmt(static_cast<double>(store->max_resident_bytes()) / 1e6, 1) << " MB (budget "
              << fmt(static_cast<double>(options.store_budget) / 1e6, 1) << " MB)\n";
  }
  return finish_observability(options, *stats, spans, std::cout) ? 0 : 1;
}

/// Simulate once, replay the fixed what-if scenario set over the cached
/// trace (core/sweep.h). One row per scenario; --progress streams completed
/// (scenario x user) shard counts to stderr while the sweep runs.
int cmd_sweep(const CliOptions& options) {
  fault::FaultPlan plan;
  core::SweepOptions sweep_options;
  sweep_options.num_threads = options.threads;
  sweep_options.batch_size = options.batch_size;
  sweep_options.collect_stage_stats = options.stats || !options.stats_json.empty();
  sweep_options.failure_policy = options.failure_policy;
  sweep_options.max_shard_retries = options.max_shard_retries;
  sweep_options.checkpoint_dir = options.checkpoint_dir;
  sweep_options.checkpoint_every_users = options.checkpoint_every;
  sweep_options.resume = options.resume;
  sweep_options.store_dir = options.store_dir;
  sweep_options.store_budget_bytes = options.store_budget;
  sweep_options.account_dir = options.account_dir;
  sweep_options.account_budget_bytes = options.account_budget;
  for (const auto& spec : options.faults) plan.add(spec);
  for (const auto& spec : options.ckpt_faults) plan.add_checkpoint_fault(spec);
  if (!options.faults.empty() || !options.ckpt_faults.empty()) {
    sweep_options.fault_plan = &plan;
  }
  if (options.progress) {
    sweep_options.progress = [](const core::SweepProgress& p) {
      std::cerr << "\r[sweep] " << p.completed << "/" << p.total << " shards (scenario "
                << p.scenario_index << ", user " << p.user << ")   ";
      if (p.completed == p.total) std::cerr << "\n";
    };
  }

  sim::StudyGenerator generator{options.study};
  core::SweepEngine sweep{&generator, sweep_options};
  sweep.add_scenario({.name = "baseline"});
  for (const double idle_days : {1.0, 3.0, 7.0}) {
    core::Scenario scenario;
    scenario.name = "kill-" + std::to_string(static_cast<int>(idle_days)) + "d";
    scenario.policy = [idle_days](trace::TraceSink* downstream) {
      return std::make_unique<core::KillAfterIdlePolicy>(downstream, days(idle_days));
    };
    sweep.add_scenario(std::move(scenario));
  }
  sweep.add_scenario({.name = "doze", .policy = [](trace::TraceSink* downstream) {
                        return std::make_unique<core::DozeLikePolicy>(downstream);
                      }});

  util::StatusOr<obs::RunStats> stats = util::Status::internal("sweep did not start");
  try {
    stats = sweep.run();
  } catch (const std::exception& e) {
    std::cerr << "sweep failed: " << e.what() << "\n";
    return 1;
  }
  if (!stats.ok()) {
    std::cerr << "sweep failed: " << stats.status().to_string() << "\n";
    return 1;
  }
  print_checkpoint_notes(options, *stats);

  TextTable table({"scenario", "energy kJ", "vs baseline", "packets"});
  const core::ScenarioResult* baseline = sweep.result("baseline");
  const double base_joules = baseline != nullptr ? baseline->ledger.total_joules() : 0.0;
  for (const auto& result : sweep.results()) {
    const double joules = result.ledger.total_joules();
    const std::string delta =
        base_joules > 0.0 ? fmt(100.0 * (joules - base_joules) / base_joules, 1) + "%" : "-";
    table.add_row({result.name, fmt(joules / 1e3, 1), delta,
                   std::to_string(result.stats.packets)});
  }
  table.print(std::cout);
  std::cout << "store: " << sweep.store().event_count() << " events, "
            << fmt(static_cast<double>(sweep.store().memory_use().resident_bytes) / 1e6, 1) << " MB cached";
  if (sweep.store().spilled_bytes() > 0) {
    std::cout << ", " << fmt(static_cast<double>(sweep.store().spilled_bytes()) / 1e6, 1)
              << " MB in " << sweep.store().num_segments() << " segment(s) on disk";
  }
  std::cout << "; " << sweep.num_scenarios() << " scenarios in " << fmt(stats->wall_ms, 1)
            << " ms\n";

  // --stats / --stats-json report the sweep-wide aggregate RunStats (its
  // stages fold every scenario's chains; per-scenario stats live on the
  // ScenarioResult for library users).
  obs::TraceWriter no_spans;
  CliOptions observability = options;
  observability.trace_out.clear();  // no span writer on the sweep path
  return finish_observability(observability, *stats, no_spans, std::cout) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " generate|analyze|report|figures|run|sweep [flags]\n"
              << "flags: --days N --users N --seed S --format csv|bin\n"
              << "       --threads N (shard the study by user; results identical to serial)\n"
              << "       --batch-size N (events per batch on the sink path; 0 = per-record; "
                 "results identical for every N)\n"
              << "       --stats (per-stage profile)  --stats-json FILE (structured run "
                 "report, schema wildenergy.run_stats.v2)\n"
              << "       --trace-out FILE (Perfetto spans)\n"
              << "sweep: --progress (per-shard progress on stderr)\n"
              << "analyze: --replay FILE (read FILE instead of stdin)\n"
              << "         --read-policy strict|skip-and-count|best-effort\n"
              << "         --corrupt bit-flip|truncate|duplicate-span|swap-spans|bad-enum|"
                 "bad-timestamp --corrupt-seed N\n"
              << "resilience: --inject-fault user=U,nth=N[,attempts=A][,stall_ms=S] "
                 "(repeatable)\n"
              << "            --failure-policy failfast|retry-then-skip  "
                 "--max-shard-retries N\n"
              << "checkpoint/resume (run/sweep/analyze): --checkpoint-dir DIR "
                 "--checkpoint-every N\n"
              << "            --resume (continue from the newest good checkpoint; "
                 "bit-identical to an uninterrupted run)\n"
              << "            --inject-ckpt-fault nth=N,kind=hard-stop|short-write|io-error"
                 "[,truncate_to=B] (kill-and-recover harness)\n"
              << "out-of-core (run/sweep/analyze): --population N (parameterized fleet; "
                 "excludes --users)\n"
              << "            --store-dir DIR (capture via sealed on-disk segments; analyze "
                 "replays a sealed dir)\n"
              << "            --store-budget BYTES (resident column cap; 0 = fully "
                 "out-of-core)  --resume (reuse sealed segments)\n"
              << "bounded analyses (run/sweep): --account-dir DIR (fold-and-release: spill "
                 "per-user detail rows to WEAC account files)\n"
              << "            --account-budget BYTES (resident account-row cap)\n"
              << "exit codes: 0 ok; 1 runtime/data failure (incl. missing/corrupt/stale "
                 "checkpoint on --resume); 2 usage error (incl. --resume without "
                 "--checkpoint-dir or --store-dir)\n";
    return 2;
  }
  CliOptions options;
  options.study = sim::small_study();
  if (!parse_flags(argc, argv, 2, options)) return 2;

  const std::string_view cmd = argv[1];
  if (!options.store_dir.empty() && cmd != "run" && cmd != "sweep" && cmd != "analyze") {
    std::cerr << "--store-dir applies to run|sweep|analyze only\n";
    return 2;
  }
  if (!options.account_dir.empty() && cmd != "run" && cmd != "sweep") {
    std::cerr << "--account-dir applies to run|sweep only\n";
    return 2;
  }
  if (cmd == "generate") return cmd_generate(options);
  if (cmd == "analyze") return cmd_analyze(options);
  if (cmd == "report") return cmd_report(options);
  if (cmd == "figures") return cmd_figures(options);
  if (cmd == "run") return cmd_run(options);
  if (cmd == "sweep") return cmd_sweep(options);
  std::cerr << "unknown command: " << cmd << "\n";
  return 2;
}
