// Tests for deterministic fault injection (fault/injector.h, fault/plan.h)
// and the engine's failure policies (core/pipeline.h): a shard that throws is
// retried and, if it keeps failing, its user is skipped — with the merged
// result bit-identical to a serial run over the surviving users, for any
// thread count.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "sim/generator.h"
#include "trace/binary_io.h"
#include "trace/csv_io.h"
#include "trace/sink.h"

namespace wildenergy {
namespace {

sim::StudyConfig fault_config() {
  sim::StudyConfig cfg = sim::small_study(/*seed=*/11);
  cfg.num_users = 3;
  cfg.num_days = 10;
  cfg.total_apps = 40;
  return cfg;
}

std::string csv_buffer() {
  std::ostringstream os;
  trace::CsvTraceWriter writer{os};
  sim::StudyGenerator{fault_config()}.run(writer);
  return os.str();
}

std::string binary_buffer() {
  std::ostringstream os;
  trace::BinaryTraceWriter writer{os};
  sim::StudyGenerator{fault_config()}.run(writer);
  return os.str();
}

constexpr fault::CorruptionKind kAllKinds[] = {
    fault::CorruptionKind::kBitFlip,       fault::CorruptionKind::kTruncate,
    fault::CorruptionKind::kDuplicateSpan, fault::CorruptionKind::kSwapSpans,
    fault::CorruptionKind::kBadEnum,       fault::CorruptionKind::kBadTimestamp,
};

TEST(Injector, DeterministicAndAlwaysChangesTheBuffer) {
  const std::string clean = csv_buffer();
  for (const auto kind : kAllKinds) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const fault::CorruptionSpec spec{kind, seed};
      const auto once = fault::apply_corruption(clean, spec);
      const auto twice = fault::apply_corruption(clean, spec);
      ASSERT_TRUE(once.ok()) << fault::to_string(kind) << ": " << once.status().message();
      ASSERT_TRUE(twice.ok());
      EXPECT_EQ(once.value(), twice.value()) << fault::to_string(kind) << " seed " << seed;
      EXPECT_NE(once.value(), clean) << fault::to_string(kind) << " seed " << seed;
    }
  }
}

TEST(Injector, ByteLevelKindsWorkOnBinaryBuffers) {
  const std::string clean = binary_buffer();
  for (const auto kind :
       {fault::CorruptionKind::kBitFlip, fault::CorruptionKind::kTruncate,
        fault::CorruptionKind::kDuplicateSpan, fault::CorruptionKind::kSwapSpans}) {
    const auto damaged = fault::apply_corruption(clean, {kind, 1});
    ASSERT_TRUE(damaged.ok()) << fault::to_string(kind);
    EXPECT_NE(damaged.value(), clean);
  }
}

TEST(Injector, CsvKindsRejectNonCsvBuffers) {
  const std::string not_csv = "WETR\x01 definitely not comma separated";
  EXPECT_FALSE(fault::apply_corruption(not_csv, {fault::CorruptionKind::kBadEnum, 0}).ok());
  EXPECT_FALSE(
      fault::apply_corruption(not_csv, {fault::CorruptionKind::kBadTimestamp, 0}).ok());
  EXPECT_FALSE(fault::apply_corruption("", {fault::CorruptionKind::kBitFlip, 0}).ok());
}

TEST(Injector, KindNamesRoundTrip) {
  for (const auto kind : kAllKinds) {
    const auto parsed = fault::parse_corruption_kind(fault::to_string(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(fault::parse_corruption_kind("gamma-ray").ok());
}

TEST(FaultPlanSpec, ParsesFullSpecInAnyKeyOrder) {
  const auto spec = fault::parse_shard_fault_spec("nth=9,stall_ms=5,user=2,attempts=3");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_EQ(spec.value().user, 2u);
  EXPECT_EQ(spec.value().nth_callback, 9u);
  EXPECT_EQ(spec.value().fail_attempts, 3u);
  EXPECT_EQ(spec.value().stall_ms, 5u);
}

TEST(FaultPlanSpec, RejectsMalformedSpecs) {
  EXPECT_FALSE(fault::parse_shard_fault_spec("nth=3").ok());           // user missing
  EXPECT_FALSE(fault::parse_shard_fault_spec("user=1,nth=0").ok());    // nth < 1
  EXPECT_FALSE(fault::parse_shard_fault_spec("user=one").ok());        // not a number
  EXPECT_FALSE(fault::parse_shard_fault_spec("user=1,zap=2").ok());    // unknown key
  EXPECT_FALSE(fault::parse_shard_fault_spec("user").ok());            // no '='
}

TEST(FaultPlan, ThrowsAtNthCallbackOnArmedAttemptsOnly) {
  fault::FaultPlan plan;
  plan.add({/*user=*/7, /*nth_callback=*/2, /*fail_attempts=*/1, /*stall_ms=*/0});
  trace::TraceCollector downstream;
  EXPECT_EQ(plan.wrap(3, &downstream), nullptr);  // no fault for user 3

  auto first = plan.wrap(7, &downstream);
  ASSERT_NE(first, nullptr);
  first->on_user_begin(7);                                        // callback 1
  EXPECT_THROW(first->on_packet(trace::PacketRecord{}), fault::ShardFault);  // callback 2

  // Attempt 2 exceeds fail_attempts=1: the wrapper forwards everything.
  auto second = plan.wrap(7, &downstream);
  ASSERT_NE(second, nullptr);
  second->on_user_begin(7);
  second->on_packet(trace::PacketRecord{});
  second->on_user_end(7);
  EXPECT_EQ(plan.attempts(7), 2u);
}

TEST(PipelineFaults, RetryRecoversAndStaysBitIdenticalAcrossThreadCounts) {
  sim::StudyGenerator clean_gen{fault_config()};
  core::StudyPipeline clean{&clean_gen};
  clean.run();

  for (const unsigned threads : {1u, 2u, 8u}) {
    fault::FaultPlan plan;
    plan.add({/*user=*/1, /*nth_callback=*/5, /*fail_attempts=*/1, /*stall_ms=*/0});
    core::PipelineOptions options;
    options.num_threads = threads;
    options.failure_policy = core::FailurePolicy::kRetryThenSkip;
    options.fault_plan = &plan;
    sim::StudyGenerator generator{fault_config()};
    core::StudyPipeline pipeline{&generator, options};
    const auto run = pipeline.run();
    ASSERT_TRUE(run.ok());

    const obs::RunStats& stats = run.value();
    EXPECT_EQ(stats.shard_retries, 1u) << threads << " threads";
    EXPECT_TRUE(stats.failed_users.empty());
    ASSERT_EQ(stats.shards.size(), 3u);
    EXPECT_EQ(stats.shards[1].attempts, 2u);  // failed once, recovered on retry
    EXPECT_FALSE(stats.shards[1].skipped);
    EXPECT_EQ(stats.shards[0].attempts, 1u);

    EXPECT_DOUBLE_EQ(pipeline.ledger().total_joules(), clean.ledger().total_joules())
        << threads << " threads";
    EXPECT_EQ(pipeline.ledger().total_bytes(), clean.ledger().total_bytes());
    EXPECT_EQ(pipeline.ledger().total_packets(), clean.ledger().total_packets());
  }
}

/// Baseline for the skip tests: drops one user's whole bracket, so a serial
/// run produces exactly the surviving-user study the engine merges.
class SkipUserPolicy final : public trace::TraceSink {
 public:
  SkipUserPolicy(trace::TraceSink* downstream, trace::UserId skip)
      : downstream_(downstream), skip_(skip) {}

  void on_study_begin(const trace::StudyMeta& meta) override {
    downstream_->on_study_begin(meta);
  }
  void on_user_begin(trace::UserId user) override {
    if (user != skip_) downstream_->on_user_begin(user);
  }
  void on_packet(const trace::PacketRecord& p) override {
    if (p.user != skip_) downstream_->on_packet(p);
  }
  void on_transition(const trace::StateTransition& t) override {
    if (t.user != skip_) downstream_->on_transition(t);
  }
  void on_user_end(trace::UserId user) override {
    if (user != skip_) downstream_->on_user_end(user);
  }
  void on_study_end() override { downstream_->on_study_end(); }

 private:
  trace::TraceSink* downstream_;
  trace::UserId skip_;
};

TEST(PipelineFaults, ExhaustedRetriesSkipTheUserBitIdenticallyToSerial) {
  sim::StudyGenerator baseline_gen{fault_config()};
  core::StudyPipeline baseline{&baseline_gen};
  baseline.set_policy([](trace::TraceSink* downstream) {
    return std::make_unique<SkipUserPolicy>(downstream, /*skip=*/1);
  });
  trace::TraceCollector baseline_stream;  // not shardable: exercises the replay path
  baseline.add_analysis(&baseline_stream);
  baseline.run();

  for (const unsigned threads : {1u, 2u, 8u}) {
    fault::FaultPlan plan;
    plan.add({/*user=*/1, /*nth_callback=*/3, /*fail_attempts=*/100, /*stall_ms=*/0});
    core::PipelineOptions options;
    options.num_threads = threads;
    options.failure_policy = core::FailurePolicy::kRetryThenSkip;
    options.max_shard_retries = 2;
    options.fault_plan = &plan;
    sim::StudyGenerator generator{fault_config()};
    core::StudyPipeline pipeline{&generator, options};
    trace::TraceCollector stream;
    pipeline.add_analysis(&stream);
    const auto run = pipeline.run();
    ASSERT_TRUE(run.ok());

    const obs::RunStats& stats = run.value();
    EXPECT_EQ(stats.shard_retries, 2u) << threads << " threads";
    ASSERT_EQ(stats.failed_users.size(), 1u);
    EXPECT_EQ(stats.failed_users[0], 1u);
    ASSERT_EQ(stats.shards.size(), 3u);
    EXPECT_TRUE(stats.shards[1].skipped);
    EXPECT_EQ(stats.shards[1].attempts, 3u);  // initial + 2 retries
    EXPECT_NE(stats.shards[1].status.message().find("injected fault"), std::string::npos)
        << stats.shards[1].status.message();
    EXPECT_EQ(stats.shards[1].packets, 0u);  // nothing of the skipped user survives

    EXPECT_DOUBLE_EQ(pipeline.ledger().total_joules(), baseline.ledger().total_joules())
        << threads << " threads";
    EXPECT_EQ(pipeline.ledger().total_bytes(), baseline.ledger().total_bytes());
    EXPECT_EQ(pipeline.ledger().total_packets(), baseline.ledger().total_packets());

    // The non-shardable sink's replay saw the identical surviving-user stream.
    ASSERT_EQ(stream.packets().size(), baseline_stream.packets().size());
    for (std::size_t i = 0; i < stream.packets().size(); ++i) {
      EXPECT_EQ(stream.packets()[i].time.us, baseline_stream.packets()[i].time.us);
      EXPECT_EQ(stream.packets()[i].user, baseline_stream.packets()[i].user);
      EXPECT_DOUBLE_EQ(stream.packets()[i].joules, baseline_stream.packets()[i].joules);
    }
  }
}

TEST(PipelineFaults, FailFastPropagatesTheShardFault) {
  fault::FaultPlan plan;
  plan.add({/*user=*/0, /*nth_callback=*/1, /*fail_attempts=*/1, /*stall_ms=*/0});
  core::PipelineOptions options;
  options.num_threads = 2;
  options.fault_plan = &plan;  // failure_policy stays kFailFast
  sim::StudyGenerator generator{fault_config()};
  core::StudyPipeline pipeline{&generator, options};
  EXPECT_THROW(pipeline.run(), fault::ShardFault);
}

TEST(PipelineFaults, StallingFaultStillRecoversOnRetry) {
  sim::StudyGenerator clean_gen{fault_config()};
  core::StudyPipeline clean{&clean_gen};
  clean.run();

  fault::FaultPlan plan;
  plan.add({/*user=*/2, /*nth_callback=*/1, /*fail_attempts=*/1, /*stall_ms=*/20});
  core::PipelineOptions options;
  options.num_threads = 2;
  options.failure_policy = core::FailurePolicy::kRetryThenSkip;
  options.fault_plan = &plan;
  sim::StudyGenerator generator{fault_config()};
  core::StudyPipeline pipeline{&generator, options};
  const auto run = pipeline.run();
  ASSERT_TRUE(run.ok());

  const obs::RunStats& stats = run.value();
  EXPECT_EQ(stats.shard_retries, 1u);
  EXPECT_TRUE(stats.failed_users.empty());
  EXPECT_GE(stats.shards[2].wall_ms, 0.0);
  EXPECT_DOUBLE_EQ(pipeline.ledger().total_joules(), clean.ledger().total_joules());
}

}  // namespace
}  // namespace wildenergy
