// Out-of-core trace plane (trace/store_backend.h, trace/segment.h,
// trace/spilling_store.h, sim/population.h; DESIGN.md §14).
//
// The hard requirements under test:
//   - WESG segments round-trip chunks bit-exactly at every batch size.
//   - Corruption matrix (satellite of PR 9): every fault/injector.h damage
//     kind applied to a sealed segment yields a positioned util::Status on
//     open — never a silent wrong replay.
//   - SpillingTraceStore replays bit-identical to the RAM TraceStore: same
//     ledgers, figures, and analyses at batch sizes {1, 256, 4096} and
//     thread counts {1, 2, 8}; the budget actually bounds resident columns.
//   - Kill-and-recover: a capture killed mid-study leaves sealed segments a
//     resuming capture reuses — only the missing users are regenerated.
//   - Populations: user k's stream is identical at any population size, and
//     the paper-default StudyConfig still produces the legacy streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/figures.h"
#include "analysis/persistence.h"
#include "appmodel/catalog.h"
#include "core/pipeline.h"
#include "core/policy.h"
#include "core/sweep.h"
#include "energy/ledger.h"
#include "fault/injector.h"
#include "sim/generator.h"
#include "sim/population.h"
#include "sim/study_config.h"
#include "sim/user_model.h"
#include "trace/batch.h"
#include "trace/segment.h"
#include "trace/sink.h"
#include "trace/spilling_store.h"
#include "trace/store_backend.h"
#include "trace/trace_store.h"
#include "util/status.h"
#include "util/time.h"

namespace wildenergy {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test; removed up front so reruns are clean.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("wildenergy_ooc_test_" + name);
  fs::remove_all(dir);
  return dir;
}

void write_file(const fs::path& path, std::string_view bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

trace::StudyMeta test_meta() {
  trace::StudyMeta meta;
  meta.num_users = 3;
  meta.num_apps = 9;
  meta.study_begin = TimePoint{1'000'000};
  meta.study_end = TimePoint{90'000'000};
  return meta;
}

trace::PacketRecord test_packet(trace::UserId user, std::int64_t us, std::uint32_t app,
                                std::uint64_t bytes) {
  trace::PacketRecord p;
  p.time = TimePoint{us};
  p.user = user;
  p.app = app;
  p.flow = 77'000 + app;
  p.bytes = bytes;
  p.direction = (bytes % 2) == 0 ? radio::Direction::kDownlink : radio::Direction::kUplink;
  p.interface = (bytes % 3) == 0 ? trace::Interface::kWifi : trace::Interface::kCellular;
  p.state = static_cast<trace::ProcessState>(app % trace::kNumProcessStates);
  p.joules = 0.001 * static_cast<double>(bytes) + 0.125;
  return p;
}

trace::StateTransition test_transition(trace::UserId user, std::int64_t us,
                                       std::uint32_t app) {
  trace::StateTransition t;
  t.time = TimePoint{us};
  t.user = user;
  t.app = app;
  t.from = static_cast<trace::ProcessState>(app % trace::kNumProcessStates);
  t.to = static_cast<trace::ProcessState>((app + 1) % trace::kNumProcessStates);
  return t;
}

/// A small chunk with a non-trivial packet/transition interleave, negative
/// time deltas impossible but repeated timestamps present.
trace::EventBatch test_chunk(trace::UserId user, std::int64_t base_us, int events) {
  trace::EventBatch batch;
  batch.user = user;
  for (int i = 0; i < events; ++i) {
    const std::int64_t us = base_us + 1'000 * (i / 2);  // timestamp ties on purpose
    if (i % 3 == 2) {
      batch.add(test_transition(user, us, static_cast<std::uint32_t>(i % 5)));
    } else {
      batch.add(test_packet(user, us, static_cast<std::uint32_t>(i % 7),
                            static_cast<std::uint64_t>(40 + 13 * i)));
    }
  }
  return batch;
}

void expect_identical_columns(const trace::EventBatch& a, const trace::EventBatch& b) {
  ASSERT_EQ(a.order.size(), b.order.size());
  for (std::size_t i = 0; i < a.order.size(); ++i) EXPECT_EQ(a.order[i], b.order[i]);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    const trace::PacketRecord& pa = a.packets[i];
    const trace::PacketRecord& pb = b.packets[i];
    ASSERT_EQ(pa.time.us, pb.time.us);
    ASSERT_EQ(pa.user, pb.user);
    ASSERT_EQ(pa.app, pb.app);
    ASSERT_EQ(pa.flow, pb.flow);
    ASSERT_EQ(pa.bytes, pb.bytes);
    ASSERT_EQ(pa.direction, pb.direction);
    ASSERT_EQ(pa.interface, pb.interface);
    ASSERT_EQ(pa.state, pb.state);
    ASSERT_EQ(pa.joules, pb.joules);
  }
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (std::size_t i = 0; i < a.transitions.size(); ++i) {
    const trace::StateTransition& ta = a.transitions[i];
    const trace::StateTransition& tb = b.transitions[i];
    ASSERT_EQ(ta.time.us, tb.time.us);
    ASSERT_EQ(ta.user, tb.user);
    ASSERT_EQ(ta.app, tb.app);
    ASSERT_EQ(ta.from, tb.from);
    ASSERT_EQ(ta.to, tb.to);
  }
}

/// Collects a replayed chunk into plain columns (no brackets expected).
trace::EventBatch collect_chunk(const trace::MappedSegment& segment,
                                const trace::SegmentChunkInfo& chunk,
                                std::size_t batch_size) {
  struct ColumnSink final : trace::TraceSink {
    trace::EventBatch out;
    void on_packet(const trace::PacketRecord& p) override { out.add(p); }
    void on_transition(const trace::StateTransition& t) override { out.add(t); }
  } sink;
  const util::Status status = segment.replay_chunk(chunk, sink, batch_size);
  EXPECT_TRUE(status.ok()) << status.to_string();
  sink.out.user = chunk.user;
  return sink.out;
}

// --------------------------------------------------- output comparison kit
// Same assertions as sweep_test.cpp: EXPECT_EQ everywhere, never NEAR — an
// out-of-core replay must be bit-identical to the RAM store, not close.

void expect_identical_ledgers(const energy::EnergyLedger& a, const energy::EnergyLedger& b) {
  EXPECT_EQ(a.total_joules(), b.total_joules());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.total_packets(), b.total_packets());
  const auto a_states = a.state_totals();
  const auto b_states = b.state_totals();
  for (std::size_t s = 0; s < a_states.size(); ++s) EXPECT_EQ(a_states[s], b_states[s]);
  ASSERT_EQ(a.accounts().size(), b.accounts().size());
  auto bit = b.accounts().begin();
  for (const auto& acc : a.accounts()) {
    ASSERT_EQ(acc.user, bit->user);
    ASSERT_EQ(acc.app, bit->app);
    const auto& other = *bit;
    EXPECT_EQ(acc.joules, other.joules);
    EXPECT_EQ(acc.bytes, other.bytes);
    EXPECT_EQ(acc.packets, other.packets);
    for (std::size_t s = 0; s < acc.state_joules.size(); ++s) {
      EXPECT_EQ(acc.state_joules[s], other.state_joules[s]);
    }
    ASSERT_EQ(acc.days.size(), other.days.size());
    for (std::size_t d = 0; d < acc.days.size(); ++d) {
      EXPECT_EQ(acc.days[d].fg_joules, other.days[d].fg_joules);
      EXPECT_EQ(acc.days[d].bg_joules, other.days[d].bg_joules);
      EXPECT_EQ(acc.days[d].fg_bytes, other.days[d].fg_bytes);
      EXPECT_EQ(acc.days[d].bg_bytes, other.days[d].bg_bytes);
    }
    ++bit;
  }
}

void expect_identical_figures(const energy::EnergyLedger& a, const energy::EnergyLedger& b) {
  const auto pop_a = analysis::top10_popularity(a);
  const auto pop_b = analysis::top10_popularity(b);
  ASSERT_EQ(pop_a.size(), pop_b.size());
  for (std::size_t i = 0; i < pop_a.size(); ++i) {
    EXPECT_EQ(pop_a[i].app, pop_b[i].app);
    EXPECT_EQ(pop_a[i].users_with_app_in_top10, pop_b[i].users_with_app_in_top10);
  }
  const auto cons_a = analysis::top_consumers_by_energy(a);
  const auto cons_b = analysis::top_consumers_by_energy(b);
  ASSERT_EQ(cons_a.size(), cons_b.size());
  for (std::size_t i = 0; i < cons_a.size(); ++i) {
    EXPECT_EQ(cons_a[i].app, cons_b[i].app);
    EXPECT_EQ(cons_a[i].bytes, cons_b[i].bytes);
    EXPECT_EQ(cons_a[i].joules, cons_b[i].joules);
  }
}

sim::StudyConfig ooc_study() {
  sim::StudyConfig config = sim::small_study();
  config.num_days = 30;
  return config;
}

// ---------------------------------------------------------- segment format

TEST(SegmentFormat, ChunksRoundTripBitExactlyAtEveryBatchSize) {
  const fs::path dir = scratch_dir("roundtrip");
  fs::create_directories(dir);
  const trace::StudyMeta meta = test_meta();

  std::vector<trace::EventBatch> chunks;
  chunks.push_back(test_chunk(0, 1'500'000, 57));
  chunks.push_back(test_chunk(2, 2'250'000, 1));   // single-event chunk
  chunks.push_back(test_chunk(1, 9'000'000, 260)); // spans several batches

  trace::SegmentWriter writer{meta};
  writer.add_chunk(chunks[0], 0, true);
  writer.add_chunk(chunks[1], 0, true);
  writer.add_chunk(chunks[2], 0, true);
  EXPECT_EQ(writer.chunk_count(), 3u);
  const fs::path file = dir / "seg_000001.wesg";
  write_file(file, writer.finish());

  trace::MappedSegment segment;
  const util::Status opened = segment.open(file.string());
  ASSERT_TRUE(opened.ok()) << opened.to_string();
  EXPECT_EQ(segment.meta().num_users, meta.num_users);
  EXPECT_EQ(segment.meta().num_apps, meta.num_apps);
  EXPECT_EQ(segment.meta().study_begin.us, meta.study_begin.us);
  EXPECT_EQ(segment.meta().study_end.us, meta.study_end.us);
  ASSERT_EQ(segment.chunks().size(), 3u);

  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const trace::SegmentChunkInfo& info = segment.chunks()[c];
    EXPECT_EQ(info.user, chunks[c].user);
    EXPECT_TRUE(info.final_chunk);
    EXPECT_EQ(info.packets, chunks[c].packets.size());
    EXPECT_EQ(info.transitions, chunks[c].transitions.size());
    for (const std::size_t batch_size : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                         std::size_t{4096}}) {
      const trace::EventBatch replayed = collect_chunk(segment, info, batch_size);
      expect_identical_columns(chunks[c], replayed);
    }
  }
}

TEST(SegmentFormat, EmptyChunkRoundTrips) {
  const fs::path dir = scratch_dir("empty_chunk");
  fs::create_directories(dir);
  trace::EventBatch empty;
  empty.user = 5;
  trace::SegmentWriter writer{test_meta()};
  writer.add_chunk(empty, 0, true);
  const fs::path file = dir / "seg_000001.wesg";
  write_file(file, writer.finish());

  trace::MappedSegment segment;
  ASSERT_TRUE(segment.open(file.string()).ok());
  ASSERT_EQ(segment.chunks().size(), 1u);
  EXPECT_EQ(segment.chunks()[0].user, 5u);
  EXPECT_EQ(segment.chunks()[0].events(), 0u);
  const trace::EventBatch replayed = collect_chunk(segment, segment.chunks()[0], 256);
  EXPECT_TRUE(replayed.empty());
}

// ------------------------------------------------------- corruption matrix
// Sealed segments under every fault/injector.h damage kind: open must fail
// with a positioned status naming the file, or — when the corruption is
// degenerate and the bytes are unchanged — decode and replay identically.

TEST(SegmentCorruption, EveryDamageKindIsDetectedNeverSilent) {
  const fs::path dir = scratch_dir("corruption");
  fs::create_directories(dir);
  trace::SegmentWriter writer{test_meta()};
  const trace::EventBatch chunk_a = test_chunk(0, 1'200'000, 120);
  const trace::EventBatch chunk_b = test_chunk(1, 3'400'000, 75);
  writer.add_chunk(chunk_a, 0, true);
  writer.add_chunk(chunk_b, 0, true);
  const fs::path file = dir / "seg_000001.wesg";
  const std::string clean = writer.finish();
  write_file(file, clean);
  {
    trace::MappedSegment segment;
    ASSERT_TRUE(segment.open(file.string()).ok());
  }

  for (const fault::CorruptionKind kind :
       {fault::CorruptionKind::kBitFlip, fault::CorruptionKind::kTruncate,
        fault::CorruptionKind::kDuplicateSpan, fault::CorruptionKind::kSwapSpans}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto damaged = fault::apply_corruption(clean, {kind, seed});
      ASSERT_TRUE(damaged.ok());
      write_file(file, *damaged);

      trace::MappedSegment segment;
      const util::Status opened = segment.open(file.string());
      if (*damaged == clean) {
        // Degenerate corruption (e.g. swapping identical spans): the bytes
        // did not change, so the segment must still open and replay.
        ASSERT_TRUE(opened.ok())
            << fault::to_string(kind) << " seed " << seed << ": " << opened.to_string();
        ASSERT_EQ(segment.chunks().size(), 2u);
        expect_identical_columns(chunk_a, collect_chunk(segment, segment.chunks()[0], 64));
        expect_identical_columns(chunk_b, collect_chunk(segment, segment.chunks()[1], 64));
      } else {
        ASSERT_FALSE(opened.ok())
            << fault::to_string(kind) << " seed " << seed << ": damage went undetected";
        EXPECT_EQ(opened.code(), util::StatusCode::kDataLoss);
        EXPECT_NE(opened.message().find("seg_000001.wesg"), std::string::npos)
            << "status does not name the damaged file: " << opened.message();
      }
    }
  }
}

// -------------------------------------------------------- spilling store

TEST(SpillingStore, ReplayBitIdenticalToRamStoreAcrossBatchAndThreads) {
  const fs::path dir = scratch_dir("bit_identical");
  const sim::StudyConfig config = ooc_study();
  sim::StudyGenerator generator{config};

  trace::TraceStore ram;
  ASSERT_TRUE(ram.capture(generator).ok());

  trace::SpillOptions spill;
  spill.dir = dir.string();
  spill.budget_bytes = 64 * 1024;  // small enough to force several spills
  trace::SpillingTraceStore spilling{spill};
  ASSERT_TRUE(spilling.capture(generator).ok());
  ASSERT_TRUE(spilling.health().ok());
  EXPECT_GT(spilling.num_segments(), 0u);
  EXPECT_GT(spilling.spilled_bytes(), 0u);
  EXPECT_EQ(spilling.event_count(), ram.event_count());

  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{256}, std::size_t{4096}}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      core::PipelineOptions options;
      options.batch_size = batch_size;
      options.num_threads = threads;

      core::StudyPipeline ram_pipeline{&ram, options};
      analysis::PersistenceAnalysis ram_persistence;
      ram_pipeline.add_analysis("persistence", &ram_persistence);
      const auto ram_stats = ram_pipeline.run();
      ASSERT_TRUE(ram_stats.ok()) << ram_stats.status().to_string();

      core::StudyPipeline ooc_pipeline{&spilling, options};
      analysis::PersistenceAnalysis ooc_persistence;
      ooc_pipeline.add_analysis("persistence", &ooc_persistence);
      const auto ooc_stats = ooc_pipeline.run();
      ASSERT_TRUE(ooc_stats.ok()) << ooc_stats.status().to_string();

      SCOPED_TRACE("batch_size=" + std::to_string(batch_size) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(ram_stats->packets, ooc_stats->packets);
      EXPECT_EQ(ram_stats->transitions, ooc_stats->transitions);
      EXPECT_EQ(ram_stats->bytes, ooc_stats->bytes);
      EXPECT_EQ(ram_stats->joules, ooc_stats->joules);
      expect_identical_ledgers(ram_pipeline.ledger(), ooc_pipeline.ledger());
      expect_identical_figures(ram_pipeline.ledger(), ooc_pipeline.ledger());
      EXPECT_EQ(ram_persistence.memory_use().resident_bytes > 0,
                ooc_persistence.memory_use().resident_bytes > 0);
      EXPECT_GT(ooc_stats->memory.store.spilled_bytes, 0u);
    }
  }
}

TEST(SpillingStore, EmitUserMatchesRamColumns) {
  const fs::path dir = scratch_dir("emit_user");
  const sim::StudyConfig config = ooc_study();
  sim::StudyGenerator generator{config};
  trace::TraceStore ram;
  ASSERT_TRUE(ram.capture(generator).ok());
  trace::SpillOptions spill;
  spill.dir = dir.string();
  spill.budget_bytes = 32 * 1024;
  trace::SpillingTraceStore spilling{spill};
  ASSERT_TRUE(spilling.capture(generator).ok());
  ASSERT_EQ(spilling.users(), ram.users());

  for (const trace::UserId user : ram.users()) {
    for (const std::size_t batch_size :
         {std::size_t{0}, std::size_t{1}, std::size_t{4096}}) {
      trace::TraceCollector from_ram;
      trace::TraceCollector from_spill;
      ASSERT_TRUE(ram.emit_user(user, from_ram, batch_size).ok());
      ASSERT_TRUE(spilling.emit_user(user, from_spill, batch_size).ok());
      SCOPED_TRACE("user=" + std::to_string(user) +
                   " batch_size=" + std::to_string(batch_size));
      trace::EventBatch a;
      for (const auto& p : from_ram.packets()) a.add(p);
      trace::EventBatch b;
      for (const auto& p : from_spill.packets()) b.add(p);
      ASSERT_EQ(from_ram.packets().size(), from_spill.packets().size());
      ASSERT_EQ(from_ram.transitions().size(), from_spill.transitions().size());
      for (std::size_t i = 0; i < from_ram.packets().size(); ++i) {
        ASSERT_EQ(from_ram.packets()[i].time.us, from_spill.packets()[i].time.us);
        ASSERT_EQ(from_ram.packets()[i].bytes, from_spill.packets()[i].bytes);
        ASSERT_EQ(from_ram.packets()[i].joules, from_spill.packets()[i].joules);
        ASSERT_EQ(from_ram.packets()[i].flow, from_spill.packets()[i].flow);
      }
      for (std::size_t i = 0; i < from_ram.transitions().size(); ++i) {
        ASSERT_EQ(from_ram.transitions()[i].time.us, from_spill.transitions()[i].time.us);
        ASSERT_EQ(from_ram.transitions()[i].app, from_spill.transitions()[i].app);
      }
    }
  }
}

TEST(SpillingStore, BudgetBoundsResidentColumns) {
  const fs::path dir = scratch_dir("budget");
  const sim::StudyConfig config = ooc_study();
  sim::StudyGenerator generator{config};

  trace::TraceStore ram;
  ASSERT_TRUE(ram.capture(generator).ok());
  const std::uint64_t full_bytes = ram.memory_use().resident_bytes;
  ASSERT_GT(full_bytes, 128u * 1024u);

  trace::SpillOptions spill;
  spill.dir = dir.string();
  spill.budget_bytes = 48 * 1024;
  trace::SpillingTraceStore spilling{spill};
  ASSERT_TRUE(spilling.capture(generator).ok());
  // The high-water mark of resident columns stays far below full residency
  // (one user's in-flight chunk can overshoot the budget transiently before
  // the mid-user split seals it, so the bound has slack but is real).
  EXPECT_LT(spilling.max_resident_bytes(), full_bytes / 2);
  EXPECT_GT(spilling.num_segments(), 1u);
  // After a sealed capture everything lives on disk.
  EXPECT_LT(spilling.memory_use().resident_bytes, full_bytes / 2);
  EXPECT_GT(spilling.spilled_bytes(), 0u);
}

TEST(SpillingStore, FullyOutOfCoreAndResidentTailModes) {
  const sim::StudyConfig config = ooc_study();
  sim::StudyGenerator generator{config};
  trace::TraceStore ram;
  ASSERT_TRUE(ram.capture(generator).ok());

  // budget 0: every user spills as soon as their bracket closes.
  {
    const fs::path dir = scratch_dir("all_disk");
    trace::SpillOptions spill;
    spill.dir = dir.string();
    spill.budget_bytes = 0;
    trace::SpillingTraceStore store{spill};
    ASSERT_TRUE(store.capture(generator).ok());
    EXPECT_GT(store.num_segments(), 0u);
    trace::TraceCollector a;
    trace::TraceCollector b;
    ASSERT_TRUE(ram.emit(a, 256).ok());
    ASSERT_TRUE(store.emit(b, 256).ok());
    ASSERT_EQ(a.packets().size(), b.packets().size());
    ASSERT_EQ(a.transitions().size(), b.transitions().size());
  }

  // Huge budget + seal_on_capture off: nothing spills, the resident tail
  // replay path alone must still match.
  {
    const fs::path dir = scratch_dir("all_ram");
    trace::SpillOptions spill;
    spill.dir = dir.string();
    spill.budget_bytes = 1ull << 32;
    spill.seal_on_capture = false;
    trace::SpillingTraceStore store{spill};
    ASSERT_TRUE(store.capture(generator).ok());
    EXPECT_EQ(store.num_segments(), 0u);
    EXPECT_EQ(store.spilled_bytes(), 0u);
    trace::TraceCollector a;
    trace::TraceCollector b;
    ASSERT_TRUE(ram.emit(a, 64).ok());
    ASSERT_TRUE(store.emit(b, 64).ok());
    ASSERT_EQ(a.packets().size(), b.packets().size());
    ASSERT_EQ(a.transitions().size(), b.transitions().size());
    for (std::size_t i = 0; i < a.packets().size(); ++i) {
      ASSERT_EQ(a.packets()[i].time.us, b.packets()[i].time.us);
      ASSERT_EQ(a.packets()[i].joules, b.packets()[i].joules);
    }
  }

  // Mid-size budget + seal off: mixed sealed-segment + resident-tail replay.
  {
    const fs::path dir = scratch_dir("mixed");
    trace::SpillOptions spill;
    spill.dir = dir.string();
    spill.budget_bytes = 96 * 1024;
    spill.seal_on_capture = false;
    trace::SpillingTraceStore store{spill};
    ASSERT_TRUE(store.capture(generator).ok());
    trace::TraceCollector a;
    trace::TraceCollector b;
    ASSERT_TRUE(ram.emit(a, 256).ok());
    ASSERT_TRUE(store.emit(b, 256).ok());
    ASSERT_EQ(a.packets().size(), b.packets().size());
    ASSERT_EQ(a.transitions().size(), b.transitions().size());
    for (std::size_t i = 0; i < a.packets().size(); ++i) {
      ASSERT_EQ(a.packets()[i].time.us, b.packets()[i].time.us);
      ASSERT_EQ(a.packets()[i].joules, b.packets()[i].joules);
    }
  }
}

TEST(SpillingStore, TinyBudgetSplitsUsersIntoChunks) {
  const fs::path dir = scratch_dir("split");
  const sim::StudyConfig config = ooc_study();
  sim::StudyGenerator generator{config};
  trace::TraceStore ram;
  ASSERT_TRUE(ram.capture(generator).ok());

  trace::SpillOptions spill;
  spill.dir = dir.string();
  spill.budget_bytes = 4 * 1024;  // far below one user's stream
  trace::SpillingTraceStore store{spill};
  ASSERT_TRUE(store.capture(generator).ok());

  std::size_t total_chunks = 0;
  bool saw_non_final = false;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".wesg") continue;
    trace::MappedSegment segment;
    ASSERT_TRUE(segment.open(entry.path().string()).ok());
    total_chunks += segment.chunks().size();
    for (const auto& chunk : segment.chunks()) {
      if (!chunk.final_chunk) saw_non_final = true;
    }
  }
  EXPECT_GT(total_chunks, ram.num_users());  // at least one user was split
  EXPECT_TRUE(saw_non_final);

  trace::TraceCollector a;
  trace::TraceCollector b;
  ASSERT_TRUE(ram.emit(a, 256).ok());
  ASSERT_TRUE(store.emit(b, 256).ok());
  ASSERT_EQ(a.packets().size(), b.packets().size());
  for (std::size_t i = 0; i < a.packets().size(); ++i) {
    ASSERT_EQ(a.packets()[i].time.us, b.packets()[i].time.us);
    ASSERT_EQ(a.packets()[i].bytes, b.packets()[i].bytes);
    ASSERT_EQ(a.packets()[i].joules, b.packets()[i].joules);
  }
}

TEST(SpillingStore, ResumeWithDifferentStudyFails) {
  const fs::path dir = scratch_dir("stale_meta");
  {
    sim::StudyGenerator generator{ooc_study()};
    trace::SpillOptions spill;
    spill.dir = dir.string();
    trace::SpillingTraceStore store{spill};
    ASSERT_TRUE(store.capture(generator).ok());
  }
  sim::StudyConfig other = ooc_study();
  other.num_days = 45;  // different study => different meta
  sim::StudyGenerator generator{other};
  trace::SpillOptions spill;
  spill.dir = dir.string();
  spill.resume = true;
  trace::SpillingTraceStore store{spill};
  const util::Status status = store.capture(generator);
  EXPECT_FALSE(status.ok());
}

TEST(SpillingStore, MissingUserIsNotFound) {
  const fs::path dir = scratch_dir("not_found");
  sim::StudyGenerator generator{ooc_study()};
  trace::SpillOptions spill;
  spill.dir = dir.string();
  trace::SpillingTraceStore store{spill};
  ASSERT_TRUE(store.capture(generator).ok());
  trace::TraceCollector sink;
  const util::Status status = store.emit_user(9999, sink, 256);
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

// ----------------------------------------------------- sweep over backends

TEST(SweepStoreBackend, SpillingSweepMatchesRamSweep) {
  const sim::StudyConfig config = ooc_study();

  const auto add_scenarios = [](core::SweepEngine& sweep) {
    sweep.add_scenario({.name = "baseline"});
    core::Scenario kill;
    kill.name = "kill-3d";
    kill.policy = [](trace::TraceSink* downstream) {
      return std::make_unique<core::KillAfterIdlePolicy>(downstream, days(3.0));
    };
    sweep.add_scenario(std::move(kill));
  };

  sim::StudyGenerator ram_gen{config};
  core::SweepEngine ram_sweep{&ram_gen, {.num_threads = 2}};
  add_scenarios(ram_sweep);
  const auto ram_stats = ram_sweep.run();
  ASSERT_TRUE(ram_stats.ok()) << ram_stats.status().to_string();

  const fs::path dir = scratch_dir("sweep");
  sim::StudyGenerator ooc_gen{config};
  core::SweepOptions options;
  options.num_threads = 2;
  options.store_dir = dir.string();
  options.store_budget_bytes = 64 * 1024;
  core::SweepEngine ooc_sweep{&ooc_gen, options};
  add_scenarios(ooc_sweep);
  const auto ooc_stats = ooc_sweep.run();
  ASSERT_TRUE(ooc_stats.ok()) << ooc_stats.status().to_string();

  EXPECT_GT(ooc_sweep.store().spilled_bytes(), 0u);
  EXPECT_GT(ooc_stats->memory.store.spilled_bytes, 0u);
  ASSERT_EQ(ram_sweep.results().size(), ooc_sweep.results().size());
  for (std::size_t i = 0; i < ram_sweep.results().size(); ++i) {
    SCOPED_TRACE(ram_sweep.results()[i].name);
    ASSERT_TRUE(ooc_sweep.results()[i].status.ok());
    expect_identical_ledgers(ram_sweep.results()[i].ledger, ooc_sweep.results()[i].ledger);
    expect_identical_figures(ram_sweep.results()[i].ledger, ooc_sweep.results()[i].ledger);
    EXPECT_EQ(ram_sweep.results()[i].stats.packets, ooc_sweep.results()[i].stats.packets);
    EXPECT_EQ(ram_sweep.results()[i].stats.joules, ooc_sweep.results()[i].stats.joules);
  }
}

// -------------------------------------------------------- kill and recover

/// Forwards to the store until `kill_after` user brackets have closed, then
/// simulates a crash mid-capture by throwing.
class KillAfterUsersSink final : public trace::TraceSink {
 public:
  KillAfterUsersSink(trace::TraceSink* downstream, std::size_t kill_after)
      : downstream_(downstream), kill_after_(kill_after) {}

  void on_study_begin(const trace::StudyMeta& meta) override {
    downstream_->on_study_begin(meta);
  }
  void on_user_begin(trace::UserId user) override { downstream_->on_user_begin(user); }
  void on_packet(const trace::PacketRecord& p) override { downstream_->on_packet(p); }
  void on_transition(const trace::StateTransition& t) override {
    downstream_->on_transition(t);
  }
  void on_batch(const trace::EventBatch& batch) override { downstream_->on_batch(batch); }
  void on_user_end(trace::UserId user) override {
    downstream_->on_user_end(user);
    if (++users_done_ >= kill_after_) throw std::runtime_error("killed mid-capture");
  }
  void on_study_end() override { downstream_->on_study_end(); }

 private:
  trace::TraceSink* downstream_;
  std::size_t kill_after_;
  std::size_t users_done_ = 0;
};

/// Counts per-user pulls, to prove a resuming capture never regenerates a
/// user the sealed segments already cover.
class CountingGenerator final : public sim::StudyGenerator {
 public:
  using sim::StudyGenerator::StudyGenerator;
  util::Status emit_user(trace::UserId user, trace::TraceSink& sink,
                         std::size_t batch_size) override {
    pulled.push_back(user);
    return sim::StudyGenerator::emit_user(user, sink, batch_size);
  }
  std::vector<trace::UserId> pulled;
};

TEST(SpillKillRecover, ResumeReusesSealedSegmentsAndPullsOnlyMissingUsers) {
  const fs::path dir = scratch_dir("kill_recover");
  const sim::StudyConfig config = ooc_study();
  constexpr std::size_t kKillAfter = 3;

  trace::TraceStore ram;
  {
    sim::StudyGenerator generator{config};
    ASSERT_TRUE(ram.capture(generator).ok());
  }
  const std::size_t num_users = ram.num_users();
  ASSERT_GT(num_users, kKillAfter);

  // Crash mid-capture: budget 0 seals (and manifests) each user at its
  // bracket close, so the first kKillAfter users survive the kill.
  {
    sim::StudyGenerator generator{config};
    trace::SpillOptions spill;
    spill.dir = dir.string();
    spill.budget_bytes = 0;
    trace::SpillingTraceStore store{spill};
    KillAfterUsersSink killer{&store, kKillAfter};
    EXPECT_THROW(generator.run(killer, 256), std::runtime_error);
  }

  // Resume: only the users the sealed segments do not cover are pulled.
  CountingGenerator generator{config};
  trace::SpillOptions spill;
  spill.dir = dir.string();
  spill.budget_bytes = 0;
  spill.resume = true;
  trace::SpillingTraceStore store{spill};
  const util::Status captured = store.capture(generator, 256);
  ASSERT_TRUE(captured.ok()) << captured.to_string();
  EXPECT_EQ(store.resumed_users(), kKillAfter);
  EXPECT_EQ(generator.pulled.size(), num_users - kKillAfter);
  for (const trace::UserId user : generator.pulled) {
    EXPECT_GE(user, static_cast<trace::UserId>(kKillAfter));
  }

  // The recovered + completed store replays the full study bit-identically.
  trace::TraceCollector a;
  trace::TraceCollector b;
  ASSERT_TRUE(ram.emit(a, 256).ok());
  ASSERT_TRUE(store.emit(b, 256).ok());
  ASSERT_EQ(a.packets().size(), b.packets().size());
  ASSERT_EQ(a.transitions().size(), b.transitions().size());
  for (std::size_t i = 0; i < a.packets().size(); ++i) {
    ASSERT_EQ(a.packets()[i].time.us, b.packets()[i].time.us);
    ASSERT_EQ(a.packets()[i].user, b.packets()[i].user);
    ASSERT_EQ(a.packets()[i].bytes, b.packets()[i].bytes);
    ASSERT_EQ(a.packets()[i].joules, b.packets()[i].joules);
  }

  // A second resuming capture has nothing left to pull.
  CountingGenerator again{config};
  trace::SpillOptions spill2;
  spill2.dir = dir.string();
  spill2.resume = true;
  trace::SpillingTraceStore store2{spill2};
  ASSERT_TRUE(store2.capture(again, 256).ok());
  EXPECT_EQ(store2.resumed_users(), num_users);
  EXPECT_TRUE(again.pulled.empty());
}

// -------------------------------------------------------------- population

TEST(Population, UserStreamsInvariantAcrossPopulationSize) {
  sim::PopulationConfig small_pop;
  small_pop.num_users = 5;
  small_pop.num_days = 3;
  sim::PopulationConfig large_pop = small_pop;
  large_pop.num_users = 50;

  sim::StudyGenerator small_gen{small_pop.study()};
  sim::StudyGenerator large_gen{large_pop.study()};
  for (trace::UserId user = 0; user < small_pop.num_users; ++user) {
    trace::TraceCollector a;
    trace::TraceCollector b;
    ASSERT_TRUE(small_gen.emit_user(user, a, 0).ok());
    ASSERT_TRUE(large_gen.emit_user(user, b, 0).ok());
    SCOPED_TRACE("user=" + std::to_string(user));
    ASSERT_EQ(a.packets().size(), b.packets().size());
    ASSERT_EQ(a.transitions().size(), b.transitions().size());
    for (std::size_t i = 0; i < a.packets().size(); ++i) {
      ASSERT_EQ(a.packets()[i].time.us, b.packets()[i].time.us);
      ASSERT_EQ(a.packets()[i].app, b.packets()[i].app);
      ASSERT_EQ(a.packets()[i].bytes, b.packets()[i].bytes);
      ASSERT_EQ(a.packets()[i].flow, b.packets()[i].flow);
    }
    for (std::size_t i = 0; i < a.transitions().size(); ++i) {
      ASSERT_EQ(a.transitions()[i].time.us, b.transitions()[i].time.us);
      ASSERT_EQ(a.transitions()[i].app, b.transitions()[i].app);
    }
  }
}

TEST(Population, PaperDefaultsKeepLegacyBehaviour) {
  // The gated knobs default off: no personal diurnal profile, and the
  // profile-aware weight function degrades to the shared legacy curve.
  const sim::StudyConfig config = sim::small_study();
  for (trace::UserId user = 0; user < 4; ++user) {
    const sim::DiurnalProfile profile = sim::make_user_diurnal(config, user);
    EXPECT_FALSE(profile.personal);
    for (const double hour : {0.5, 8.5, 13.0, 20.0, 23.9}) {
      EXPECT_EQ(sim::diurnal_weight(hour, profile), sim::diurnal_weight(hour));
    }
  }
}

TEST(Population, DiurnalSigmaPersonalizesProfiles) {
  sim::StudyConfig config = sim::small_study();
  config.diurnal_shift_sigma_hours = 1.5;
  config.diurnal_weight_sigma = 0.3;
  const sim::DiurnalProfile p0 = sim::make_user_diurnal(config, 0);
  const sim::DiurnalProfile p1 = sim::make_user_diurnal(config, 1);
  EXPECT_TRUE(p0.personal);
  EXPECT_TRUE(p1.personal);
  EXPECT_NE(p0.shift_hours, p1.shift_hours);
  // Deterministic per user: rebuilding yields the same profile.
  const sim::DiurnalProfile p0_again = sim::make_user_diurnal(config, 0);
  EXPECT_EQ(p0.shift_hours, p0_again.shift_hours);
  EXPECT_EQ(p0.morning, p0_again.morning);

  // The personalized study produces a different stream than the default one.
  sim::StudyConfig base = sim::small_study();
  base.num_days = 5;
  sim::StudyConfig shifted = base;
  shifted.diurnal_shift_sigma_hours = 1.5;
  sim::StudyGenerator base_gen{base};
  sim::StudyGenerator shifted_gen{shifted};
  trace::TraceCollector a;
  trace::TraceCollector b;
  ASSERT_TRUE(base_gen.emit_user(0, a, 0).ok());
  ASSERT_TRUE(shifted_gen.emit_user(0, b, 0).ok());
  bool differs = a.packets().size() != b.packets().size();
  for (std::size_t i = 0; !differs && i < a.packets().size(); ++i) {
    differs = a.packets()[i].time.us != b.packets()[i].time.us;
  }
  EXPECT_TRUE(differs);
}

TEST(Population, InstallScaleSparsifiesPortfolios) {
  const sim::StudyConfig dense = sim::small_study();
  sim::StudyConfig sparse = dense;
  sparse.install_scale = 0.25;
  const auto catalog = appmodel::AppCatalog::full_catalog(dense.seed, dense.total_apps);
  std::size_t dense_installed = 0;
  std::size_t sparse_installed = 0;
  for (trace::UserId user = 0; user < 12; ++user) {
    dense_installed += sim::make_user_plan(dense, catalog, user).installed.size();
    sparse_installed += sim::make_user_plan(sparse, catalog, user).installed.size();
  }
  EXPECT_LT(sparse_installed, dense_installed);
  EXPECT_GT(sparse_installed, 0u);
}

// ------------------------------------------------------ memory accounting

TEST(TraceStoreMemory, MemoryBytesCoversColumnsAndIndex) {
  sim::StudyGenerator generator{ooc_study()};
  trace::TraceStore store;
  ASSERT_TRUE(store.capture(generator).ok());

  std::uint64_t payload = 0;
  std::size_t users = 0;
  for (const trace::UserId user : store.users()) {
    const trace::EventBatch* events = store.find_user(user);
    ASSERT_NE(events, nullptr);
    payload += events->packets.size() * sizeof(trace::PacketRecord) +
               events->transitions.size() * sizeof(trace::StateTransition) +
               events->order.size() * sizeof(trace::EventKind);
    ++users;
  }
  // Capacity accounting can only exceed the payload, and the per-user
  // EventBatch headers plus the user index must be counted on top.
  EXPECT_GE(store.memory_use().resident_bytes,
            payload + users * sizeof(trace::EventBatch) +
                users * (sizeof(trace::UserId) + sizeof(std::size_t)));
}

}  // namespace
}  // namespace wildenergy
