# Empty compiler generated dependencies file for inlab_validation.
# This may be replaced when dependencies are built.
