file(REMOVE_RECURSE
  "CMakeFiles/longitudinal_trends.dir/bench/longitudinal_trends.cpp.o"
  "CMakeFiles/longitudinal_trends.dir/bench/longitudinal_trends.cpp.o.d"
  "bench/longitudinal_trends"
  "bench/longitudinal_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longitudinal_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
