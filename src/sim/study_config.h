// Configuration of the synthetic user study.
//
// Defaults mirror the paper's data collection (§3): 20 users, 623 days
// (December 2012 - November 2014), 342 unique apps, Samsung Galaxy S III on
// an unlimited LTE plan. Everything is a pure function of `seed`.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace wildenergy::sim {

struct StudyConfig {
  std::uint64_t seed = 42;
  std::uint32_t num_users = 20;
  std::int64_t num_days = 623;
  std::uint32_t total_apps = 342;

  /// Mean phone pickups per day for an average-engagement user. Each pickup
  /// foregrounds one or more apps in sequence.
  double pickups_per_day = 18.0;
  /// Spread of per-user engagement (lognormal sigma); the paper emphasizes
  /// strong user diversity (Fig. 1).
  double engagement_sigma = 0.45;
  /// Spread of per-(user, app) affinity. Heavy-tailed affinities create both
  /// favourite apps and the rarely-used, background-only apps of §5.
  double affinity_sigma = 1.6;
  /// Probability that an installed app is effectively abandoned by the user
  /// (foregrounded a handful of times over the whole study) — these are the
  /// §5 what-if savings candidates.
  double abandon_probability = 0.12;

  /// Day-of-week engagement modulation (the §3.1 week-to-week fluctuation).
  double weekday_amplitude = 0.25;

  /// Fraction of each day the user is on WiFi (a nightly "home" window).
  /// The study handed out unlimited-LTE phones, so the default is 0 — all
  /// traffic cellular, as in the paper's analyses. bench/cellular_vs_wifi
  /// turns this on to check the §3 claim that cellular dominates energy.
  double wifi_availability = 0.0;

  // -- population scaling (sim/population.h) --------------------------------
  // All three default to the values that reproduce the paper's 20-user
  // study byte-for-byte; PopulationConfig turns them on for large fleets.

  /// Multiplies every app's install probability (clamped to [0, 1]).
  /// Million-user fleets carry sparser portfolios than the paper's heavily
  /// instrumented panel; 1.0 leaves the paper behaviour untouched.
  double install_scale = 1.0;
  /// Per-user shift of the diurnal activity curve (hours, normal sigma):
  /// real fleets span chronotypes and timezones. 0 = the shared curve.
  double diurnal_shift_sigma_hours = 0.0;
  /// Per-user lognormal jitter on the morning/lunch/evening bump weights.
  /// 0 = the shared curve (and the exact legacy sampling draw sequence).
  double diurnal_weight_sigma = 0.0;

  [[nodiscard]] TimePoint study_begin() const { return kEpoch; }
  [[nodiscard]] TimePoint study_end() const { return kEpoch + days(static_cast<double>(num_days)); }
};

/// A scaled-down config for unit tests and fast iteration: 6 users, 60 days,
/// 80 apps. Statistically similar, seconds to run.
[[nodiscard]] inline StudyConfig small_study(std::uint64_t seed = 42) {
  StudyConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 6;
  cfg.num_days = 60;
  cfg.total_apps = 80;
  return cfg;
}

}  // namespace wildenergy::sim
